//! Cell libraries and gate→cell binding.

use crate::cell::{Cell, CellId};
use statsize_netlist::{GateKind, Netlist};

/// A collection of standard-cell templates covering every
/// ([`GateKind`], fan-in) combination a netlist may use.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: String,
    cells: Vec<Cell>,
}

impl CellLibrary {
    /// Creates a library from explicit cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn new(name: impl Into<String>, cells: Vec<Cell>) -> Self {
        assert!(!cells.is_empty(), "library must contain at least one cell");
        Self {
            name: name.into(),
            cells,
        }
    }

    /// The synthetic 180 nm-class library used by all experiments.
    ///
    /// Constants are representative of a late-1990s/early-2000s 180 nm
    /// process: FO4 inverter delay ≈ 100 ps, logical-effort-like scaling of
    /// `K` and pin capacitance with gate complexity, and intrinsic delays
    /// growing with fan-in. The paper's commercial library is proprietary;
    /// see `DESIGN.md` for the substitution rationale.
    pub fn synthetic_180nm() -> Self {
        let mut cells = Vec::new();
        let mut push = |name: &str, kind, fanin, d_int, k, ccell, cpin, area| {
            cells.push(Cell::new(name, kind, fanin, d_int, k, ccell, cpin, area));
        };
        //     name      kind            fanin  Dint   K     Ccell  Cpin  area
        push("INV", GateKind::Not, 1, 20.0, 20.0, 1.0, 1.0, 1.0);
        push("BUF", GateKind::Buf, 1, 35.0, 18.0, 1.2, 1.0, 1.3);
        for (fi, dint_a, k_a, cc_a, cp_a, ar_a) in [
            (2usize, 30.0, 26.0, 1.6, 1.33, 1.5),
            (3usize, 40.0, 32.0, 2.2, 1.67, 2.0),
            (4usize, 52.0, 38.0, 2.8, 2.0, 2.5),
        ] {
            push(
                &format!("NAND{fi}"),
                GateKind::Nand,
                fi,
                dint_a,
                k_a,
                cc_a,
                cp_a,
                ar_a,
            );
            push(
                &format!("NOR{fi}"),
                GateKind::Nor,
                fi,
                dint_a + 5.0,
                k_a + 4.0,
                cc_a,
                cp_a + 0.3,
                ar_a + 0.2,
            );
            push(
                &format!("AND{fi}"),
                GateKind::And,
                fi,
                dint_a + 18.0,
                k_a - 4.0,
                cc_a + 0.4,
                cp_a - 0.2,
                ar_a + 0.5,
            );
            push(
                &format!("OR{fi}"),
                GateKind::Or,
                fi,
                dint_a + 22.0,
                k_a - 2.0,
                cc_a + 0.4,
                cp_a,
                ar_a + 0.5,
            );
        }
        push("XOR2", GateKind::Xor, 2, 60.0, 42.0, 2.4, 2.0, 2.8);
        push("XOR3", GateKind::Xor, 3, 85.0, 50.0, 3.2, 2.4, 4.0);
        push("XOR4", GateKind::Xor, 4, 110.0, 58.0, 4.0, 2.8, 5.2);
        push("XNOR2", GateKind::Xnor, 2, 62.0, 43.0, 2.4, 2.0, 2.8);
        push("XNOR3", GateKind::Xnor, 3, 87.0, 51.0, 3.2, 2.4, 4.0);
        push("XNOR4", GateKind::Xnor, 4, 112.0, 59.0, 4.0, 2.8, 5.2);
        Self::new("synthetic_180nm", cells)
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up a cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Finds the cell implementing `kind` whose fan-in is closest to (and
    /// at least) `fanin`; falls back to the largest available fan-in.
    ///
    /// Returns `None` if no cell implements `kind` at all.
    pub fn select(&self, kind: GateKind, fanin: usize) -> Option<CellId> {
        let mut best: Option<(usize, usize)> = None; // (cell index, its fanin)
        for (i, c) in self.cells.iter().enumerate() {
            if c.kind() != kind {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bf)) => {
                    if bf < fanin {
                        c.fanin() > bf // both too small: prefer bigger
                    } else {
                        c.fanin() >= fanin && c.fanin() < bf // prefer tightest fit
                    }
                }
            };
            if better {
                best = Some((i, c.fanin()));
            }
        }
        best.map(|(i, _)| CellId(i as u32))
    }

    /// Binds every gate of a netlist to a cell, returning one [`CellId`]
    /// per gate (indexed by gate id).
    ///
    /// # Panics
    ///
    /// Panics if some gate's kind has no cell in the library.
    pub fn bind(&self, netlist: &Netlist) -> Vec<CellId> {
        netlist
            .gate_ids()
            .map(|gid| {
                let g = netlist.gate(gid);
                self.select(g.kind(), g.fanin()).unwrap_or_else(|| {
                    panic!("no cell implements {} (fan-in {})", g.kind(), g.fanin())
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsize_netlist::shapes;

    #[test]
    fn synthetic_library_covers_all_kinds() {
        let lib = CellLibrary::synthetic_180nm();
        for kind in GateKind::ALL {
            let max_fanin = if kind.is_single_input() { 1 } else { 4 };
            for fi in 1..=max_fanin {
                if !kind.is_single_input() && fi == 1 {
                    continue;
                }
                assert!(
                    lib.select(kind, fi).is_some(),
                    "no cell for {kind} fan-in {fi}"
                );
            }
        }
    }

    #[test]
    fn select_prefers_exact_fanin() {
        let lib = CellLibrary::synthetic_180nm();
        let id = lib.select(GateKind::Nand, 3).unwrap();
        assert_eq!(lib.cell(id).fanin(), 3);
        assert_eq!(lib.cell(id).name(), "NAND3");
    }

    #[test]
    fn select_rounds_up_then_clamps() {
        let lib = CellLibrary::new(
            "tiny",
            vec![
                Cell::new("NAND2", GateKind::Nand, 2, 30.0, 26.0, 1.6, 1.3, 1.5),
                Cell::new("NAND4", GateKind::Nand, 4, 52.0, 38.0, 2.8, 2.0, 2.5),
            ],
        );
        // fanin 3 rounds up to NAND4.
        assert_eq!(lib.cell(lib.select(GateKind::Nand, 3).unwrap()).fanin(), 4);
        // fanin 6 clamps down to the largest available.
        assert_eq!(lib.cell(lib.select(GateKind::Nand, 6).unwrap()).fanin(), 4);
        assert!(lib.select(GateKind::Xor, 2).is_none());
    }

    #[test]
    fn bind_maps_every_gate() {
        let lib = CellLibrary::synthetic_180nm();
        let nl = shapes::grid("g", 3, 3);
        let binding = lib.bind(&nl);
        assert_eq!(binding.len(), nl.gate_count());
        for (gid, &cid) in nl.gate_ids().zip(binding.iter()) {
            assert_eq!(lib.cell(cid).kind(), nl.gate(gid).kind());
        }
    }

    #[test]
    fn complex_gates_are_slower_than_inverters() {
        let lib = CellLibrary::synthetic_180nm();
        let inv = lib.cell(lib.select(GateKind::Not, 1).unwrap());
        let nand4 = lib.cell(lib.select(GateKind::Nand, 4).unwrap());
        let xor2 = lib.cell(lib.select(GateKind::Xor, 2).unwrap());
        let load = 4.0;
        assert!(inv.delay(1.0, load) < nand4.delay(1.0, load));
        assert!(inv.delay(1.0, load) < xor2.delay(1.0, load));
    }
}

//! Standard-cell library, delay model, and process-variation model.
//!
//! The DATE'05 paper uses a logical-effort-style delay model (its EQ 1):
//!
//! ```text
//! De = Dint + K · Cload / Ccell
//! ```
//!
//! where `Dint` is the cell's intrinsic delay, `K` a per-cell drive
//! constant, `Cload` the capacitive load on the output net, and `Ccell`
//! the total cell capacitance — which scales linearly with the gate width
//! `w` chosen by the sizing optimizer. Upsizing a gate therefore speeds the
//! gate itself up (larger `Ccell`) but slows its fan-in gates down (their
//! `Cload` grows with this gate's input-pin capacitance, also ∝ `w`).
//! This tension is exactly what sensitivity-driven sizing navigates.
//!
//! The paper determined the constants from a 180 nm commercial library,
//! which is not redistributable; [`CellLibrary::synthetic_180nm`] provides
//! a synthetic library with representative constants (FO4 inverter delay
//! ≈ 100 ps). Absolute delays differ from the paper's, but all structural
//! trends (who wins, crossovers) are preserved — see `DESIGN.md`.
//!
//! Intra-die process variation follows the paper's model: each timing
//! arc's delay is a Gaussian with `σ = 10%` of nominal, truncated at `±3σ`
//! ([`VariationModel::paper_default`]).
//!
//! # Example
//!
//! ```
//! use statsize_cells::{CellLibrary, DelayModel, GateSizes, VariationModel};
//! use statsize_netlist::shapes;
//!
//! let nl = shapes::chain("c", 3);
//! let lib = CellLibrary::synthetic_180nm();
//! let model = DelayModel::new(&lib, &nl);
//! let mut sizes = GateSizes::minimum(&nl);
//!
//! let g = nl.topological_gates()[0];
//! let before = model.nominal_delay(&nl, &sizes, g);
//! sizes.set_width(g, 2.0);
//! let after = model.nominal_delay(&nl, &sizes, g);
//! assert!(after < before, "upsizing a gate speeds it up");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell;
mod delay;
mod library;
mod sizes;
mod variation;

pub use cell::{Cell, CellId};
pub use delay::DelayModel;
pub use library::CellLibrary;
pub use sizes::GateSizes;
pub use variation::VariationModel;

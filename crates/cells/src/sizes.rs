//! Per-gate width (sizing) state.

use statsize_netlist::{GateId, Netlist};

/// The sizing state of a circuit: one continuous width multiplier per gate.
///
/// The coordinate-descent optimizers of the paper start from a
/// minimum-size implementation (all widths 1.0) and repeatedly add `Δw` to
/// the most sensitive gate ([`GateSizes::resize`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GateSizes {
    widths: Vec<f64>,
    min_width: f64,
}

impl GateSizes {
    /// All gates at minimum size (width 1.0) — the optimizers' starting
    /// point.
    pub fn minimum(netlist: &Netlist) -> Self {
        Self {
            widths: vec![1.0; netlist.gate_count()],
            min_width: 1.0,
        }
    }

    /// Creates explicit widths.
    ///
    /// # Panics
    ///
    /// Panics if any width is below the minimum (1.0) or non-finite.
    pub fn from_widths(widths: Vec<f64>) -> Self {
        assert!(
            widths.iter().all(|w| w.is_finite() && *w >= 1.0),
            "widths must be finite and >= 1.0"
        );
        Self {
            widths,
            min_width: 1.0,
        }
    }

    /// Width of a gate.
    pub fn width(&self, gate: GateId) -> f64 {
        self.widths[gate.index()]
    }

    /// The minimum admissible width (1.0 for every constructor). Callers
    /// that validate a resize before committing it — e.g. the serve-mode
    /// session, which must reject rather than panic — compare against
    /// this.
    pub fn min_width(&self) -> f64 {
        self.min_width
    }

    /// Sets a gate's width.
    ///
    /// # Panics
    ///
    /// Panics if `w` is below the minimum width or non-finite.
    pub fn set_width(&mut self, gate: GateId, w: f64) {
        assert!(
            w.is_finite() && w >= self.min_width,
            "width must be finite and >= {}, got {w}",
            self.min_width
        );
        self.widths[gate.index()] = w;
    }

    /// Adds `delta` to a gate's width (the paper's `w += Δw` sizing move).
    ///
    /// # Panics
    ///
    /// Panics if the resulting width would fall below the minimum.
    pub fn resize(&mut self, gate: GateId, delta: f64) {
        let w = self.widths[gate.index()] + delta;
        self.set_width(gate, w);
    }

    /// Number of gates tracked.
    pub fn len(&self) -> usize {
        self.widths.len()
    }

    /// True when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.widths.is_empty()
    }

    /// Sum of all widths — the "total gate size" metric of the paper's
    /// Table 1 (column 3) and Figure 10's y-axis, before area weighting.
    pub fn total_width(&self) -> f64 {
        self.widths.iter().sum()
    }

    /// All widths, indexed by gate id.
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsize_netlist::shapes;

    #[test]
    fn minimum_sizes_are_all_one() {
        let nl = shapes::chain("c", 4);
        let s = GateSizes::minimum(&nl);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.total_width(), 4.0);
    }

    #[test]
    fn resize_accumulates() {
        let nl = shapes::chain("c", 2);
        let mut s = GateSizes::minimum(&nl);
        let g = nl.topological_gates()[0];
        s.resize(g, 0.5);
        s.resize(g, 0.5);
        assert_eq!(s.width(g), 2.0);
        assert_eq!(s.total_width(), 3.0);
    }

    #[test]
    #[should_panic(expected = "width must be finite")]
    fn below_minimum_rejected() {
        let nl = shapes::chain("c", 2);
        let mut s = GateSizes::minimum(&nl);
        s.resize(nl.topological_gates()[0], -0.5);
    }

    #[test]
    #[should_panic(expected = "widths must be finite")]
    fn from_widths_validates() {
        GateSizes::from_widths(vec![1.0, 0.5]);
    }
}

//! The intra-die process-variation model.

use statsize_dist::{Dist, TruncatedGaussian};

/// Intra-die delay variation: each timing arc's delay is Gaussian with a
/// standard deviation proportional to its nominal value, truncated
/// symmetrically.
///
/// The paper's experiments use `σ = 10%` of nominal, truncated at `±3σ`
/// ([`VariationModel::paper_default`]); any `(σ-fraction, truncation)`
/// pair is supported, and `sigma_frac = 0` degenerates to deterministic
/// timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    sigma_frac: f64,
    trunc_sigmas: f64,
}

impl VariationModel {
    /// Creates a variation model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_frac` is negative or `trunc_sigmas` is not
    /// positive.
    pub fn new(sigma_frac: f64, trunc_sigmas: f64) -> Self {
        assert!(
            sigma_frac.is_finite() && sigma_frac >= 0.0,
            "sigma fraction must be finite and >= 0, got {sigma_frac}"
        );
        assert!(
            trunc_sigmas.is_finite() && trunc_sigmas > 0.0,
            "truncation must be positive, got {trunc_sigmas}"
        );
        Self {
            sigma_frac,
            trunc_sigmas,
        }
    }

    /// The paper's experimental setup: `σ = 10%` of nominal, `±3σ`
    /// truncation (Section 4).
    pub fn paper_default() -> Self {
        Self::new(0.10, 3.0)
    }

    /// A deterministic (zero-variance) model; SSTA then reduces to STA.
    pub fn deterministic() -> Self {
        Self::new(0.0, 3.0)
    }

    /// Standard deviation as a fraction of nominal delay.
    pub fn sigma_frac(&self) -> f64 {
        self.sigma_frac
    }

    /// Truncation point in multiples of σ.
    pub fn trunc_sigmas(&self) -> f64 {
        self.trunc_sigmas
    }

    /// The analytic delay distribution for a nominal delay (ps).
    pub fn truncated(&self, nominal: f64) -> TruncatedGaussian {
        TruncatedGaussian::from_nominal(nominal, self.sigma_frac, self.trunc_sigmas)
    }

    /// The lattice delay distribution for a nominal delay, at step `dt`.
    pub fn delay_dist(&self, nominal: f64, dt: f64) -> Dist {
        self.truncated(nominal).discretize(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_parameters() {
        let v = VariationModel::paper_default();
        assert_eq!(v.sigma_frac(), 0.10);
        assert_eq!(v.trunc_sigmas(), 3.0);
    }

    #[test]
    fn delay_dist_statistics_track_nominal() {
        let v = VariationModel::paper_default();
        let d = v.delay_dist(100.0, 0.5);
        assert!((d.mean() - 100.0).abs() < 0.05, "mean {}", d.mean());
        // σ of the ±3σ-truncated Gaussian is slightly below the parent's.
        assert!(d.std_dev() > 8.0 && d.std_dev() < 10.0, "σ {}", d.std_dev());
        let (lo, hi) = d.support();
        assert!(lo >= 69.0 && hi <= 131.0, "support [{lo}, {hi}]");
    }

    #[test]
    fn deterministic_model_gives_point_mass() {
        let v = VariationModel::deterministic();
        let d = v.delay_dist(42.0, 1.0);
        assert!(d.support_len() <= 2);
        assert!((d.mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn sigma_scales_with_nominal() {
        let v = VariationModel::paper_default();
        let d1 = v.delay_dist(50.0, 0.25);
        let d2 = v.delay_dist(200.0, 0.25);
        let ratio = d2.std_dev() / d1.std_dev();
        assert!((ratio - 4.0).abs() < 0.1, "σ ratio {ratio}");
    }
}

//! Netlist-level delay evaluation: loads, nominal delays, and area.

use crate::cell::{Cell, CellId};
use crate::library::CellLibrary;
use crate::sizes::GateSizes;
use statsize_netlist::{GateId, NetId, Netlist};

/// Evaluates the EQ 1 delay model over a whole netlist: binds every gate to
/// a library cell and computes loads, nominal pin-to-pin delays, and sized
/// area as functions of the current [`GateSizes`].
///
/// The model captures the two effects of upsizing gate `x` by `Δw` that
/// drive the paper's sensitivity analysis:
///
/// * `x`'s own arcs speed up (`Ccell = w · Ccell_unit` grows), and
/// * every fan-in gate of `x` slows down (its `Cload` includes `x`'s
///   input-pin capacitance `w · Cpin_unit`).
#[derive(Debug, Clone)]
pub struct DelayModel<'lib> {
    lib: &'lib CellLibrary,
    binding: Vec<CellId>,
    /// Fixed load on primary-output nets (fF), representing the pad or
    /// downstream stage the paper's synthesized netlists drive.
    po_load: f64,
    /// Wire capacitance added per fan-out connection (fF).
    wire_cap_per_fanout: f64,
}

impl<'lib> DelayModel<'lib> {
    /// Binds `netlist` to `lib` with default parasitics (3 fF primary-output
    /// load, 0.2 fF of wire per fan-out connection).
    ///
    /// # Panics
    ///
    /// Panics if some gate kind has no cell in the library.
    pub fn new(lib: &'lib CellLibrary, netlist: &Netlist) -> Self {
        Self::with_parasitics(lib, netlist, 3.0, 0.2)
    }

    /// Binds with explicit parasitic parameters.
    ///
    /// # Panics
    ///
    /// Panics if some gate kind has no cell in the library, or the
    /// parasitics are negative.
    pub fn with_parasitics(
        lib: &'lib CellLibrary,
        netlist: &Netlist,
        po_load: f64,
        wire_cap_per_fanout: f64,
    ) -> Self {
        assert!(po_load >= 0.0, "primary-output load must be non-negative");
        assert!(
            wire_cap_per_fanout >= 0.0,
            "wire capacitance must be non-negative"
        );
        Self {
            lib,
            binding: lib.bind(netlist),
            po_load,
            wire_cap_per_fanout,
        }
    }

    /// The library this model draws cells from.
    pub fn library(&self) -> &'lib CellLibrary {
        self.lib
    }

    /// The cell bound to a gate.
    pub fn cell(&self, gate: GateId) -> &'lib Cell {
        self.lib.cell(self.binding[gate.index()])
    }

    /// Capacitive load (fF) seen by whatever drives `net`: the sum of the
    /// sized input-pin capacitances of all load gates, wire capacitance per
    /// fan-out, and the fixed primary-output load if applicable.
    pub fn load(&self, netlist: &Netlist, sizes: &GateSizes, net: NetId) -> f64 {
        let n = netlist.net(net);
        let mut c = 0.0;
        for &g in n.loads() {
            c += sizes.width(g) * self.cell(g).pin_cap_unit() + self.wire_cap_per_fanout;
        }
        if n.is_primary_output() {
            c += self.po_load;
        }
        c
    }

    /// Nominal pin-to-pin delay (ps) of `gate` at the current sizes — the
    /// paper's EQ 1. All input pins of a gate share one delay value, as in
    /// the paper.
    pub fn nominal_delay(&self, netlist: &Netlist, sizes: &GateSizes, gate: GateId) -> f64 {
        let cell = self.cell(gate);
        let out = netlist.gate(gate).output();
        let c_load = self.load(netlist, sizes, out);
        cell.delay(sizes.width(gate), c_load)
    }

    /// Total sized area: `Σ w_g · area_unit(cell_g)`.
    pub fn area(&self, netlist: &Netlist, sizes: &GateSizes) -> f64 {
        netlist
            .gate_ids()
            .map(|g| sizes.width(g) * self.cell(g).area_unit())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statsize_netlist::shapes;

    fn setup(nl: &Netlist) -> (CellLibrary, GateSizes) {
        (CellLibrary::synthetic_180nm(), GateSizes::minimum(nl))
    }

    #[test]
    fn upsizing_a_gate_speeds_it_up_and_slows_its_fanin() {
        let nl = shapes::chain("c", 3);
        let lib = CellLibrary::synthetic_180nm();
        let model = DelayModel::new(&lib, &nl);
        let mut sizes = GateSizes::minimum(&nl);

        let gates = nl.topological_gates();
        let (g0, g1) = (gates[0], gates[1]);
        let d0_before = model.nominal_delay(&nl, &sizes, g0);
        let d1_before = model.nominal_delay(&nl, &sizes, g1);

        sizes.resize(g1, 1.0); // upsize the middle gate
        let d0_after = model.nominal_delay(&nl, &sizes, g0);
        let d1_after = model.nominal_delay(&nl, &sizes, g1);

        assert!(d1_after < d1_before, "upsized gate must speed up");
        assert!(d0_after > d0_before, "fan-in gate must slow down");
    }

    #[test]
    fn load_counts_all_fanout_pins() {
        let nl = shapes::diamond("d", 1);
        let lib = CellLibrary::synthetic_180nm();
        let model = DelayModel::new(&lib, &nl);
        let sizes = GateSizes::minimum(&nl);
        // "in" drives both arms' first inverters.
        let input = nl.find_net("in").unwrap();
        let inv_pin = 1.0; // INV pin cap at w=1
        let expected = 2.0 * (inv_pin + 0.2);
        assert!((model.load(&nl, &sizes, input) - expected).abs() < 1e-12);
    }

    #[test]
    fn primary_output_nets_carry_fixed_load() {
        let nl = shapes::chain("c", 1);
        let lib = CellLibrary::synthetic_180nm();
        let model = DelayModel::new(&lib, &nl);
        let sizes = GateSizes::minimum(&nl);
        let out = nl.primary_outputs()[0];
        assert!((model.load(&nl, &sizes, out) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn area_scales_with_width() {
        let nl = shapes::chain("c", 4);
        let (lib, mut sizes) = setup(&nl);
        let model = DelayModel::new(&lib, &nl);
        let a0 = model.area(&nl, &sizes);
        assert!((a0 - 4.0).abs() < 1e-12); // 4 INVs at unit area
        sizes.resize(nl.topological_gates()[2], 2.0);
        assert!((model.area(&nl, &sizes) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn delay_monotone_in_own_width_with_feedback_through_load() {
        // Even accounting for the fan-in slowdown, the *perturbed gate's*
        // delay is strictly decreasing in its own width.
        let nl = shapes::chain("c", 5);
        let lib = CellLibrary::synthetic_180nm();
        let model = DelayModel::new(&lib, &nl);
        let mut sizes = GateSizes::minimum(&nl);
        let g = nl.topological_gates()[2];
        let mut prev = model.nominal_delay(&nl, &sizes, g);
        for step in 1..=8 {
            sizes.set_width(g, 1.0 + step as f64 * 0.5);
            let d = model.nominal_delay(&nl, &sizes, g);
            assert!(d < prev, "delay must decrease, step {step}");
            prev = d;
        }
    }
}

//! Quickstart: analyze a circuit statistically and size its most
//! sensitive gate.
//!
//! Mirrors the paper's Figure 2: a sizing move perturbs the circuit-delay
//! CDF, and the sensitivity is the change of its 99-percentile point.
//!
//! ```text
//! cargo run --release -p statsize --example quickstart
//! ```

use statsize::{Objective, PrunedSelector, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::bench;

fn main() {
    // 1. A circuit: the real ISCAS-85 c17 (6 NAND gates), parsed from the
    //    embedded `.bench` text.
    let netlist = bench::c17();
    println!(
        "circuit `{}`: {} gates, {} nets, depth {}",
        netlist.name(),
        netlist.gate_count(),
        netlist.net_count(),
        netlist.depth()
    );

    // 2. Bind it to the synthetic 180 nm library with the paper's
    //    variation model (σ = 10% of nominal, truncated at ±3σ) and run
    //    block-based SSTA on a 1 ps lattice.
    let library = CellLibrary::synthetic_180nm();
    let mut circuit = TimedCircuit::new(&netlist, &library, VariationModel::paper_default(), 1.0);

    let sink = circuit.ssta().sink_arrival();
    println!("\ncircuit-delay distribution (upper bound, per DAC'03):");
    println!("  mean  = {:7.1} ps", sink.mean());
    println!("  sigma = {:7.1} ps", sink.std_dev());
    for p in [0.50, 0.90, 0.99] {
        println!("  T({:2.0}%) = {:6.1} ps", p * 100.0, sink.percentile(p));
    }

    // 3. Find the most sensitive gate with the paper's pruned algorithm
    //    and size it up (Δw = 1.0).
    let objective = Objective::percentile(0.99);
    let before = circuit.objective_value(objective);
    let (selection, stats) = PrunedSelector::new(1.0).select_with_stats(&circuit, objective);
    let selection = selection.expect("a minimum-size circuit always has an improving gate");
    let gate_net = netlist.gate(selection.gate).output();
    println!(
        "\nmost sensitive gate: the {} driving net `{}` \
         (S = {:.3} ps per unit width; {} of {} candidates pruned)",
        netlist.gate(selection.gate).kind(),
        netlist.net(gate_net).name(),
        selection.sensitivity,
        stats.pruned,
        stats.candidates,
    );

    circuit.commit_resize(selection.gate, 1.0);
    let after = circuit.objective_value(objective);
    println!(
        "T(99%): {before:.1} ps -> {after:.1} ps  (improved {:.1} ps at +1.0 width)",
        before - after
    );
}

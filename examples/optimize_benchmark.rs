//! Optimize an ISCAS-85-profile benchmark three ways — deterministic,
//! statistical (pruned, exact), and heuristic — and compare the resulting
//! 99-percentile delays at equal area (a one-circuit slice of the paper's
//! Table 1).
//!
//! ```text
//! cargo run --release -p statsize --example optimize_benchmark [c432] [iters]
//! ```

use statsize::{Objective, Optimizer, SelectorKind, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::generator;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "c432".to_string());
    let iters: usize = args
        .next()
        .map(|s| s.parse().expect("iterations must be a number"))
        .unwrap_or(40);

    let netlist = generator::generate_iscas(&name, 1)
        .unwrap_or_else(|| panic!("unknown ISCAS-85 profile `{name}`"));
    let stats = netlist.stats();
    println!(
        "benchmark {name}: {} nodes / {} edges (timing graph), depth {}\n",
        stats.timing_nodes, stats.timing_edges, stats.depth
    );

    let library = CellLibrary::synthetic_180nm();
    let variation = VariationModel::paper_default();
    let objective = Objective::percentile(0.99);

    // Deterministic first: its final width is the shared area budget.
    let mut det = TimedCircuit::new(&netlist, &library, variation, 2.0);
    let det_result = Optimizer::new(objective, SelectorKind::Deterministic)
        .with_max_iterations(iters)
        .run(&mut det);
    let budget = det_result.final_width;

    let mut rows = vec![(
        "deterministic",
        det_result.final_objective,
        det_result.iterations_run(),
        det_result.mean_iteration_time(),
    )];
    for (label, kind) in [
        ("statistical", SelectorKind::Pruned),
        ("heuristic(2)", SelectorKind::Heuristic { lookahead: 2 }),
    ] {
        let mut c = TimedCircuit::new(&netlist, &library, variation, 2.0);
        let r = Optimizer::new(objective, kind)
            .with_width_limit(budget)
            .with_max_iterations(iters)
            .run(&mut c);
        rows.push((
            label,
            r.final_objective,
            r.iterations_run(),
            r.mean_iteration_time(),
        ));
    }

    let initial = det_result.initial_objective;
    println!(
        "T(99%) initial: {:.3} ns, width budget +{:.1}%\n",
        initial / 1000.0,
        det_result.width_increase_percent()
    );
    println!(
        "{:>14}  {:>9}  {:>7}  {:>7}  {:>9}",
        "optimizer", "T99 (ns)", "impr.%", "iters", "s/iter"
    );
    let det_t99 = rows[0].1;
    for (label, t99, iters, per_iter) in &rows {
        println!(
            "{label:>14}  {:>9.3}  {:>7.2}  {iters:>7}  {:>9.3}",
            t99 / 1000.0,
            100.0 * (det_t99 - t99) / det_t99,
            per_iter.as_secs_f64(),
        );
    }
    println!("\n(impr.% is relative to the deterministic result at the same total width)");
}

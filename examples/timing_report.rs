//! A statistical timing report: required times, slack distributions, and
//! Monte-Carlo gate criticality — the companion queries a timing engine
//! offers around the optimizer.
//!
//! Shows how optimization changes the *criticality profile*: before
//! sizing, criticality concentrates on a few long paths; after
//! deterministic sizing it smears across the wall.
//!
//! ```text
//! cargo run --release -p statsize --example timing_report
//! ```

use statsize::{Objective, Optimizer, SelectorKind, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::generator;
use statsize_ssta::{MonteCarlo, SamplingMode, SlackAnalysis, TimingNode};

fn criticality_spread(crit: &[f64]) -> (usize, f64) {
    // How many gates carry >5% criticality, and the entropy-like mass of
    // the profile (sum of criticalities = expected critical-path length).
    let busy = crit.iter().filter(|&&c| c > 0.05).count();
    let total: f64 = crit.iter().sum();
    (busy, total)
}

fn main() {
    let netlist = generator::generate_iscas("c880", 1).expect("known profile");
    let library = CellLibrary::synthetic_180nm();
    let variation = VariationModel::paper_default();
    let mut circuit = TimedCircuit::new(&netlist, &library, variation, 2.0);

    // --- Report at minimum sizes. ---
    let t99 = circuit.ssta().circuit_delay_percentile(0.99);
    let target = 1.02 * t99; // a 2% guard-banded clock target
    println!(
        "c880 at minimum sizes: T(99%) = {:.3} ns, clock target {:.3} ns\n",
        t99 / 1000.0,
        target / 1000.0
    );

    let slack = SlackAnalysis::run(circuit.graph(), circuit.delays(), target);
    println!("most critical gates (by mean statistical slack at their output):");
    println!(
        "  {:>6}  {:>12}  {:>12}  {:>10}",
        "gate", "slack (ps)", "σ(slack)", "P(viol.)"
    );
    for (gate, mean_slack) in slack.critical_gates(circuit.graph(), circuit.ssta(), 5) {
        let node = circuit.graph().out_node_of_gate(gate);
        let dist = slack.slack(circuit.ssta(), node);
        println!(
            "  {:>6}  {:>12.1}  {:>12.1}  {:>10.4}",
            netlist.net(netlist.gate(gate).output()).name(),
            mean_slack,
            dist.std_dev(),
            slack.violation_probability(circuit.ssta(), node),
        );
    }
    let p_viol = slack.violation_probability(circuit.ssta(), TimingNode::SOURCE);
    println!("  circuit-level violation probability: {p_viol:.4}");

    // --- Criticality before and after deterministic optimization. ---
    let mc = MonteCarlo::new(4_000, 7, SamplingMode::PerGate);
    let (_, crit_before) = mc.run_with_criticality(circuit.graph(), circuit.delays(), &variation);

    let _ = Optimizer::new(Objective::percentile(0.99), SelectorKind::Deterministic)
        .with_max_iterations(80)
        .run(&mut circuit);
    let (_, crit_after) = mc.run_with_criticality(circuit.graph(), circuit.delays(), &variation);

    let (busy_before, mass_before) = criticality_spread(&crit_before);
    let (busy_after, mass_after) = criticality_spread(&crit_after);
    println!("\ncriticality profile (Monte-Carlo, 4000 trials):");
    println!(
        "  before sizing:            {busy_before:4} gates above 5% criticality \
              (critical-path mass {mass_before:.1})"
    );
    println!(
        "  after deterministic opt:  {busy_after:4} gates above 5% criticality \
              (critical-path mass {mass_after:.1})"
    );
    println!(
        "\nthe deterministic optimizer spreads criticality over {} more gates — the\n\
         \"wall\" of Figure 1, and the reason statistical optimization wins at equal area.",
        busy_after.saturating_sub(busy_before)
    );
}

//! The paper's Figure 1, as a runnable demonstration: two circuits with
//! the *same deterministic delay* but different path distributions have
//! different **statistical** delays.
//!
//! A "wall" of equally critical paths (what deterministic optimization
//! produces) is fragile under variation: every path can become critical,
//! so the max over many near-critical paths pushes the high percentiles
//! out. An unbalanced distribution with one dominant path is statistically
//! faster at equal nominal delay.
//!
//! ```text
//! cargo run --release -p statsize --example wall_vs_balanced
//! ```

use statsize_cells::{CellLibrary, DelayModel, GateSizes, VariationModel};
use statsize_netlist::shapes;
use statsize_ssta::{run_sta, ArcDelays, SstaAnalysis, TimingGraph};

fn analyze(label: &str, lengths: &[usize]) -> (f64, f64) {
    let nl = shapes::path_bundle(label, lengths);
    let lib = CellLibrary::synthetic_180nm();
    let model = DelayModel::new(&lib, &nl);
    let sizes = GateSizes::minimum(&nl);
    let variation = VariationModel::paper_default();
    let graph = TimingGraph::build(&nl);
    let delays = ArcDelays::compute(&nl, &model, &sizes, &variation, 1.0);

    let sta = run_sta(&graph, &delays);
    let ssta = SstaAnalysis::run(&graph, &delays);
    let det = sta.circuit_delay();
    let t99 = ssta.circuit_delay_percentile(0.99);
    println!(
        "{label:>10}: paths {lengths:?}\n            deterministic delay {det:7.1} ps | \
         statistical T(99%) {t99:7.1} ps | gap {:5.1} ps",
        t99 - det
    );
    (det, t99)
}

fn main() {
    println!("Figure 1 demo: same deterministic delay, different statistical delay\n");

    // Scenario 1: a wall — sixteen paths of identical length (the paper's
    // Figure 1a, solid line).
    let (det_wall, t99_wall) = analyze("wall", &[12; 16]);

    // Scenario 2: unbalanced — one 12-gate path, the rest much shorter
    // (Figure 1a, dashed line).
    let lengths: Vec<usize> = std::iter::once(12).chain([6; 15]).collect();
    let (det_unbal, t99_unbal) = analyze("unbalanced", &lengths);

    assert_eq!(
        det_wall, det_unbal,
        "both circuits have the same deterministic critical delay"
    );
    println!(
        "\nequal deterministic delay ({det_wall:.1} ps), but the wall's T(99%) is \
         {:.1} ps worse:\nthe statistical max over 16 equal paths has a heavier upper tail \
         than over 1.",
        t99_wall - t99_unbal
    );
    println!(
        "\nthis is why optimizing the deterministic delay alone (which builds such \
         walls)\ncan *worsen* the true statistical circuit delay — the motivation for \
         statistical sizing."
    );
}

//! The framework supports objectives beyond the paper's 99-percentile
//! point (its Section 2 notes "a wide range of cost functions").
//!
//! This example sizes the same circuit under four objectives — T(99%),
//! mean, mean+3σ, and timing yield at a target — and shows how the
//! resulting trade-offs differ. Shift-bounded objectives use the exact
//! pruned selector; the others fall back to brute force.
//!
//! ```text
//! cargo run --release -p statsize --example custom_objective
//! ```

use statsize::{Objective, Optimizer, SelectorKind, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::generator;

fn main() {
    let netlist = generator::generate_iscas("c432", 1).expect("known profile");
    let library = CellLibrary::synthetic_180nm();
    let variation = VariationModel::paper_default();
    let iters = 25;

    // A yield target at the unsized 10th percentile: initially only 10%
    // of dies meet it, and it is reachable, so the yield objective has a
    // usable gradient and the achieved yields differ between objectives.
    let probe = TimedCircuit::new(&netlist, &library, variation, 2.0);
    let target = probe.ssta().circuit_delay_percentile(0.10);
    drop(probe);

    let objectives = [
        Objective::percentile(0.99),
        Objective::Mean,
        Objective::MeanPlusSigma(3.0),
        Objective::YieldAt(target),
    ];

    println!(
        "sizing c432 under different objectives ({iters} iterations each; \
         yield target {:.2} ns)\n",
        target / 1000.0
    );
    println!(
        "{:>12}  {:>9}  {:>9}  {:>9}  {:>8}",
        "objective", "T99 (ns)", "mean (ns)", "m+3σ (ns)", "yield %"
    );

    for objective in objectives {
        // The pruning theory covers shift-bounded objectives only; the
        // optimizer uses brute force for the rest.
        let selector = if objective.shift_bounded() {
            SelectorKind::Pruned
        } else {
            SelectorKind::BruteForce
        };
        let mut circuit = TimedCircuit::new(&netlist, &library, variation, 2.0);
        let _ = Optimizer::new(objective, selector)
            .with_max_iterations(iters)
            .run(&mut circuit);

        let sink = circuit.ssta().sink_arrival();
        println!(
            "{:>12}  {:>9.3}  {:>9.3}  {:>9.3}  {:>8.2}",
            objective.to_string(),
            sink.percentile(0.99) / 1000.0,
            sink.mean() / 1000.0,
            (sink.mean() + 3.0 * sink.std_dev()) / 1000.0,
            100.0 * sink.cdf_at(target),
        );
    }
    println!(
        "\neach row optimizes its own column's quantity. note the yield objective's\n\
         behaviour: it sizes only until the whole distribution clears the target\n\
         (yield saturates at 100%), then its gradient vanishes and it stops —\n\
         spending less area than the percentile objectives, which keep shaping\n\
         the tail for the full iteration budget."
    );
}

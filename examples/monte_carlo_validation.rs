//! Validates the SSTA upper bound against Monte-Carlo simulation, on a
//! benchmark circuit and on the worst case for the independence
//! approximation (a perfectly reconvergent diamond).
//!
//! Reproduces the paper's Section 4 observation: the bound tracks Monte
//! Carlo closely (within ~1% at the 99-percentile under the matching
//! sampling model) while always remaining conservative.
//!
//! ```text
//! cargo run --release -p statsize --example monte_carlo_validation
//! ```

use statsize_cells::{CellLibrary, DelayModel, GateSizes, VariationModel};
use statsize_netlist::{generator, shapes, Netlist};
use statsize_ssta::{ArcDelays, MonteCarlo, SamplingMode, SstaAnalysis, TimingGraph};

fn compare(label: &str, nl: &Netlist, samples: usize) {
    let lib = CellLibrary::synthetic_180nm();
    let model = DelayModel::new(&lib, nl);
    let sizes = GateSizes::minimum(nl);
    let variation = VariationModel::paper_default();
    let graph = TimingGraph::build(nl);
    let delays = ArcDelays::compute(nl, &model, &sizes, &variation, 1.0);
    let ssta = SstaAnalysis::run(&graph, &delays);
    let mc = MonteCarlo::new(samples, 42, SamplingMode::PerArc).run(&graph, &delays, &variation);

    println!("{label} ({} gates, {samples} MC samples):", nl.gate_count());
    println!(
        "  {:>6}  {:>10}  {:>10}  {:>7}",
        "p", "bound (ps)", "MC (ps)", "diff %"
    );
    for p in [0.50, 0.90, 0.99] {
        let bound = ssta.circuit_delay_percentile(p);
        let sampled = mc.percentile(p);
        println!(
            "  {:>5.0}%  {bound:>10.1}  {sampled:>10.1}  {:>+7.2}",
            p * 100.0,
            100.0 * (bound - sampled) / sampled
        );
    }
    println!();
}

fn main() {
    println!("SSTA bound vs Monte Carlo (per-arc sampling matches the bound's model)\n");

    // A benchmark-scale circuit: moderate reconvergence, tight bound.
    let c432 = generator::generate_iscas("c432", 1).expect("known profile");
    compare("c432 profile", &c432, 100_000);

    // A chain: no max operations at all — the bound is exact up to
    // discretization and sampling noise.
    compare("chain of 20", &shapes::chain("chain", 20), 100_000);

    // A diamond: the two reconverging arrival times are perfectly
    // correlated, the worst case for the independence approximation — the
    // bound is visibly, but safely, conservative.
    compare("diamond (arms of 10)", &shapes::diamond("d", 10), 100_000);

    println!(
        "the bound is conservative everywhere (positive diff) and tightest where\n\
         reconvergent correlation is weak — the paper's justification for optimizing\n\
         on the bound instead of the (exponential-cost) exact distribution."
    );
}

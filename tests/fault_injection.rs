//! Fault-injection integration suite: arms the failpoints compiled in
//! behind the `failpoints` cargo feature and proves each injected fault
//! surfaces as the documented structured [`JobOutcome`] — never a
//! process abort, never a silently wrong report.
//!
//! Run with `cargo test --features failpoints --test fault_injection`.
//! CI's fault-injection job does exactly that, plus an end-to-end CLI
//! run armed through the `STATSIZE_FAILPOINTS` environment variable.
//!
//! The failpoint registry is process-global (campaign workers run on
//! plain threads), so every test here arms with a detail filter unique
//! to its own corpus — concurrently running tests cannot trip each
//! other's faults.
#![cfg(feature = "failpoints")]

use statsize::failpoint::{arm, FaultAction};
use statsize::wal::{self, Wal};
use statsize::{Campaign, CampaignJob, JobOutcome, JobStage, Journal, Objective, SelectorKind};
use statsize_bench::campaign::render_report;
use statsize_bench::serve::Server;
use statsize_cells::CellLibrary;
use statsize_netlist::bench;
use std::path::PathBuf;
use std::time::Duration;

/// A two-job corpus whose names embed `tag`, so each test's armed
/// failpoints match only its own jobs.
fn corpus(tag: &str) -> Vec<CampaignJob> {
    vec![
        CampaignJob::new(format!("{tag}-healthy"), bench::c17()),
        CampaignJob::new(format!("{tag}-target"), bench::c17()),
    ]
}

fn campaign() -> Campaign {
    Campaign::new(Objective::percentile(0.99), SelectorKind::Pruned).with_max_iterations(2)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("statsize-fi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn injected_optimizer_panic_is_isolated_to_its_job() {
    let jobs = corpus("fi-job");
    let _fp = arm("campaign::job", Some("fi-job-target"), FaultAction::Panic);
    let report = campaign().run(&jobs, &CellLibrary::synthetic_180nm());
    assert!(report.has_faults());
    assert_eq!(report.counts().completed, 1, "the healthy job survives");
    match &report.outcomes[1] {
        JobOutcome::Failed(e) => {
            assert_eq!(e.name, "fi-job-target");
            assert_eq!(e.stage, JobStage::Selector);
            assert!(
                e.message.contains("panic during optimization"),
                "{}",
                e.message
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // The failed job still renders, with provenance, in the report.
    let json = render_report(&report, "T(99%)", false);
    assert!(json.contains("\"status\":\"failed\""));
    assert!(json.contains("\"stage\":\"selector\""));
}

#[test]
fn injected_setup_panic_reports_ssta_provenance() {
    let jobs = corpus("fi-setup");
    let _fp = arm(
        "campaign::setup",
        Some("fi-setup-target"),
        FaultAction::Panic,
    );
    let report = campaign().run(&jobs, &CellLibrary::synthetic_180nm());
    match &report.outcomes[1] {
        JobOutcome::Failed(e) => {
            assert_eq!(e.stage, JobStage::Ssta);
            assert!(
                e.message.contains("panic while building the timed circuit"),
                "{}",
                e.message
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert!(report.outcomes[0].completed().is_some());
}

#[test]
fn injected_deadline_overrun_times_out_only_the_target() {
    let jobs = corpus("fi-dl");
    let _fp = arm(
        "campaign::deadline",
        Some("fi-dl-target"),
        FaultAction::Trigger,
    );
    // A budget nothing legitimately overruns: only the injected job may
    // time out, proving the overrun came from the failpoint.
    let report = campaign()
        .with_job_deadline(Duration::from_secs(3600))
        .run(&jobs, &CellLibrary::synthetic_180nm());
    assert!(report.outcomes[0].completed().is_some());
    match &report.outcomes[1] {
        JobOutcome::TimedOut(t) => {
            assert_eq!(t.name, "fi-dl-target");
            assert!(!t.fallback_attempted);
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
}

#[test]
fn injected_deadline_overrun_degrades_to_the_fallback() {
    let jobs = corpus("fi-fb");
    let _fp = arm(
        "campaign::deadline",
        Some("fi-fb-target"),
        FaultAction::Trigger,
    );
    // The fallback rerun uses the *configured* budget (an hour), not the
    // injected zero, so it completes — degraded, and marked as such.
    let report = campaign()
        .with_job_deadline(Duration::from_secs(3600))
        .with_deadline_fallback(SelectorKind::Deterministic)
        .run(&jobs, &CellLibrary::synthetic_180nm());
    let counts = report.counts();
    assert_eq!(counts.completed, 1, "degraded runs tally separately");
    assert_eq!(counts.degraded, 1);
    assert!(!report.has_faults(), "a degraded completion is not a fault");
    let degraded = report.outcomes[1].completed().expect("fallback completes");
    assert!(degraded.degraded);
    let json = render_report(&report, "T(99%)", false);
    assert!(json.contains("\"degraded\":true"));
}

#[test]
fn fail_fast_halts_after_an_injected_fault() {
    // Eight jobs, the first rigged to panic, one shard (so completion
    // order is corpus order): fail-fast must skip everything scheduled
    // after the fault rather than burn the rest of the corpus.
    let mut jobs = vec![CampaignJob::new("fi-ff-target", bench::c17())];
    for i in 0..7 {
        jobs.push(CampaignJob::new(format!("fi-ff-rest-{i}"), bench::c17()));
    }
    let _fp = arm("campaign::job", Some("fi-ff-target"), FaultAction::Panic);
    let report = campaign()
        .with_fail_fast(true)
        .run(&jobs, &CellLibrary::synthetic_180nm());
    let counts = report.counts();
    assert_eq!(counts.failed, 1);
    assert_eq!(counts.skipped, 7, "every later job is skipped, not run");
    assert_eq!(
        report.outcomes.len(),
        jobs.len(),
        "every job is accounted for"
    );
}

#[test]
fn injected_journal_corruption_quarantines_and_reruns() {
    // Checkpoint a two-job campaign, then resume with the reader rigged
    // to tear entry line 3 (the second outcome). The journal must
    // quarantine that entry — not abort — the affected job must re-run,
    // and the resumed report must match the uninterrupted bytes.
    let jobs = corpus("fi-journal");
    let lib = CellLibrary::synthetic_180nm();
    let uninterrupted = render_report(&campaign().run(&jobs, &lib), "T(99%)", false);

    let dir = scratch_dir("journal");
    let path = dir.join("campaign.journal");
    let mut journal = Journal::create(&path).expect("create journal");
    campaign().run_resumable(&jobs, &lib, Some(&mut journal));
    drop(journal);

    let _fp = arm("journal::read", Some("3"), FaultAction::Trigger);
    let mut journal = Journal::resume(&path).expect("corruption is quarantined, not fatal");
    assert_eq!(journal.len(), 1, "the torn entry is dropped");
    assert_eq!(journal.corrupt_entries().len(), 1);
    let report = campaign().run_resumable(&jobs, &lib, Some(&mut journal));
    assert_eq!(report.resumed, 1, "only the intact entry resumes");
    assert_eq!(report.counts().completed, 2);
    assert_eq!(render_report(&report, "T(99%)", false), uninterrupted);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The serve-mode transcript behind the WAL fault tests. The armed
/// record kind (`step`) arrives only at line 5, so four durable records
/// land before the injected tear.
const WAL_SCRIPT: [&str; 6] = [
    r#"{"id":1,"op":"load","design":"c17"}"#,
    r#"{"id":2,"op":"open","session":"main","design":"c17","iters":4}"#,
    r#"{"id":3,"op":"commit","session":"main","gate":"22","delta_w":1}"#,
    r#"{"id":4,"op":"snapshot","session":"main","name":"base"}"#,
    r#"{"id":5,"op":"step","session":"main"}"#,
    r#"{"id":6,"op":"commit","session":"main","gate":"16","delta_w":1}"#,
];

fn drive(server: &mut Server, lines: &[&str]) -> Vec<String> {
    lines
        .iter()
        .filter_map(|line| server.handle_line(line))
        .collect()
}

#[test]
fn injected_torn_wal_append_recovers_to_the_durable_prefix() {
    // Rig the WAL writer to crash mid-write on the first `step` record:
    // half the line's bytes land (no newline) and the writer goes
    // permanently quiet, exactly like a process killed inside `write`.
    let dir = scratch_dir("wal-append");
    let path = dir.join("serve.wal");
    let _fp = arm("wal::append", Some("step"), FaultAction::Trigger);
    let mut server = Server::new().with_wal(Wal::create(&path).expect("create WAL"));
    drive(&mut server, &WAL_SCRIPT);
    drop(server);

    // Recovery is not a hard error: the torn tail is quarantined and
    // the four records before the tear replay.
    let contents = wal::read(&path).expect("a torn tail is quarantined, not fatal");
    assert_eq!(contents.records.len(), 4, "load/open/commit/snapshot");
    assert_eq!(contents.quarantined.len(), 1, "the half-written step line");
    assert!(!contents.sealed);
    let mut recovered = Server::new();
    recovered.restore(&contents).expect("prefix replays");

    // The recovered state equals a fresh server fed only the requests
    // whose records became durable — later mutations are honestly lost.
    let probe = r#"{"id":9,"op":"query","session":"main"}"#;
    let mut reference = Server::new();
    drive(&mut reference, &WAL_SCRIPT[..4]);
    assert_eq!(
        drive(&mut recovered, &[probe]),
        drive(&mut reference, &[probe])
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_read_time_corruption_truncates_the_wal_history() {
    // Write a healthy WAL, then rig the *reader* to tear line 4 (the
    // commit record — the header is line 1). Everything from the tear on
    // is quarantined: history cannot be trusted past a torn line.
    let dir = scratch_dir("wal-replay");
    let path = dir.join("serve.wal");
    let mut server = Server::new().with_wal(Wal::create(&path).expect("create WAL"));
    drive(&mut server, &WAL_SCRIPT);
    drop(server);

    let _fp = arm("wal::replay", Some("4"), FaultAction::Trigger);
    let contents = wal::read(&path).expect("read-time corruption is quarantined");
    assert_eq!(
        contents.records.len(),
        2,
        "only load + open precede the tear"
    );
    assert!(
        contents.quarantined.len() >= 2,
        "the torn line and everything after it: {:?}",
        contents.quarantined
    );
    let mut recovered = Server::new();
    recovered
        .restore(&contents)
        .expect("the short prefix replays");
    let response = drive(
        &mut recovered,
        &[r#"{"id":9,"op":"query","session":"main"}"#],
    );
    assert!(
        response[0].contains("\"commits\":0"),
        "the torn-away commit must not resurface: {}",
        response[0]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_admission_refusal_is_typed_and_scoped_to_its_session() {
    // `service::admit` forces the capacity check to fail for one session
    // name, with no cap configured — proving the rejection path is typed
    // and leaves the rest of the table untouched.
    let _fp = arm("service::admit", Some("fi-victim"), FaultAction::Trigger);
    let mut server = Server::new();
    drive(&mut server, &[r#"{"id":1,"op":"load","design":"c17"}"#]);
    let refused = drive(
        &mut server,
        &[r#"{"id":2,"op":"open","session":"fi-victim","design":"c17"}"#],
    );
    assert!(
        refused[0].contains("\"ok\":false") && refused[0].contains("\"code\":\"session_limit\""),
        "{}",
        refused[0]
    );
    let admitted = drive(
        &mut server,
        &[r#"{"id":3,"op":"open","session":"fi-other","design":"c17"}"#],
    );
    assert!(admitted[0].contains("\"ok\":true"), "{}", admitted[0]);
}

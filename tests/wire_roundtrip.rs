//! Property test: `wire::parse` inverts a canonical JSON renderer over
//! generated [`Json`] values — objects in document order, strings full
//! of escape-worthy characters, numbers including negative zero and
//! exact integers. Two laws are pinned per case:
//!
//! 1. **value identity** — `parse(render(j)) == j`;
//! 2. **byte stability** — re-rendering the parsed value reproduces the
//!    original line byte-for-byte (this is the stronger claim: it
//!    catches `-0.0` sign loss and float-formatting drift that `==` on
//!    `f64` forgives).
//!
//! The vendored proptest stub has no recursive strategies, so trees are
//! folded from flat token vectors inside `prop_map` with a bounded
//! nesting depth.

use proptest::collection;
use proptest::prelude::*;
use statsize::wire::{self, Json};

/// Fragments chosen to stress every escaping path: quotes, backslashes,
/// the named control escapes, raw control characters (`\u` escapes),
/// whitespace, and multi-byte UTF-8.
const PALETTE: [&str; 16] = [
    "", "a", "Z9", "\"", "\\", "\n", "\t", "\r", "\u{8}", "\u{c}", "\u{1}", "\u{1f}", " ", "π",
    "日本", "😀",
];

fn string_from(seed: u64) -> String {
    (0..4)
        .map(|i| PALETTE[((seed >> (4 * i)) & 0xf) as usize])
        .collect()
}

/// One generated token per top-level field: a value-kind discriminant, a
/// number, a string seed, and a truncate-to-integer flag.
type Token = (u32, f64, u64, bool);

/// Folds flat tokens into a bounded-depth tree — every `Json` variant is
/// reachable, containers nest at most three levels.
fn build(tokens: &[Token]) -> Json {
    let fields = tokens
        .iter()
        .enumerate()
        .map(|(i, &(kind, raw, seed, int))| {
            // `trunc()` of a small negative number is `-0.0`, so the
            // negative-zero path is exercised naturally.
            let num = if int { raw.trunc() } else { raw };
            let value = match kind % 8 {
                0 => Json::Num(num),
                1 => Json::Str(string_from(seed)),
                2 => Json::Bool(int),
                3 => Json::Null,
                4 => Json::Array(vec![
                    Json::Num(num),
                    Json::Str(string_from(seed.rotate_left(8))),
                    Json::Null,
                ]),
                5 => Json::Object(vec![
                    ("n".to_string(), Json::Num(num)),
                    (string_from(seed.rotate_left(16)), Json::Bool(!int)),
                ]),
                6 => Json::Array(vec![Json::Array(vec![Json::Object(vec![(
                    "deep".to_string(),
                    Json::Num(num),
                )])])]),
                _ => Json::Object(vec![(
                    "a".to_string(),
                    Json::Array(vec![Json::Object(vec![]), Json::Array(vec![])]),
                )]),
            };
            // The index prefix keeps keys unique; the suffix drags
            // escape-worthy characters through the *key* path too.
            (
                format!("k{i}-{}", string_from(seed.rotate_right(24))),
                value,
            )
        })
        .collect();
    Json::Object(fields)
}

/// The canonical renderer under test: insertion-ordered fields, no
/// whitespace, [`wire::escape`] for strings, `Display` for numbers —
/// exactly the shape the serve-mode responses and WAL records emit.
fn render(value: &Json) -> String {
    match value {
        Json::Object(fields) => {
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", wire::escape(k), render(v)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
        Json::Array(items) => {
            let body: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", body.join(","))
        }
        Json::Str(s) => format!("\"{}\"", wire::escape(s)),
        Json::Num(n) => format!("{n}"),
        Json::Bool(b) => format!("{b}"),
        Json::Null => "null".to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_inverts_render(
        tokens in collection::vec((0u32..8, -1e9f64..1e9, any::<u64>(), any::<bool>()), 0..10)
    ) {
        let value = build(&tokens);
        let line = render(&value);
        let parsed = match wire::parse(&line) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed on {line:?}: {e}"))),
        };
        prop_assert_eq!(&parsed, &value, "value identity lost for {}", line);
        prop_assert_eq!(render(&parsed), line, "re-render drifted");
    }
}

#[test]
fn negative_zero_survives_with_its_sign_bit() {
    let parsed = wire::parse("-0").unwrap();
    let Json::Num(n) = parsed else {
        panic!("expected a number, got {parsed:?}")
    };
    assert_eq!(n, 0.0);
    assert!(n.is_sign_negative(), "-0.0 lost its sign");
    assert_eq!(render(&Json::Num(n)), "-0");
}

#[test]
fn non_finite_renderings_are_rejected_not_absorbed() {
    // `Display` for f64 produces `NaN` / `inf` / `-inf`; none of these
    // are JSON, and the parser must refuse rather than guess.
    for bad in ["NaN", "inf", "-inf", "[NaN]", "{\"a\":inf}", "1e999x"] {
        assert!(wire::parse(bad).is_err(), "{bad:?} should not parse");
    }
    // ...which is why every number the serve layer renders is finite by
    // construction (deadlines, widths, and delays are all validated).
    assert!(
        format!("{}", f64::NAN).parse::<f64>().is_ok(),
        "sanity: Display really emits NaN"
    );
    assert!(wire::parse(&format!("{}", f64::NAN)).is_err());
    assert!(wire::parse(&format!("{}", f64::INFINITY)).is_err());
}

//! Property-based tests of the paper's perturbation-bound theory
//! (Section 3.2, Theorems 1–4), which is what makes the pruned selector
//! exact.
//!
//! The theorems are exercised both on random lattice distributions
//! (Theorems 1–3: the operators cannot increase the maximum percentile
//! shift) and on whole random circuits (Theorem 4: the front bound
//! dominates the eventual sink shift at every propagation step).

use proptest::prelude::*;
use statsize::TimedCircuit;
use statsize_cells::{CellLibrary, VariationModel};
use statsize_dist::{lattice_shift_bound, max_percentile_shift, Dist};
use statsize_netlist::generator::{self, Profile};
use statsize_netlist::GateId;
use statsize_ssta::{ConeWalk, TimingNode};
use std::collections::HashMap;

/// Strategy: a random lattice distribution with 1–24 bins at dt = 1.
fn dist_strategy() -> impl Strategy<Value = Dist> {
    (proptest::collection::vec(0.01f64..1.0, 1..24), -20i64..20).prop_map(|(raw, offset)| {
        let total: f64 = raw.iter().sum();
        let mass: Vec<f64> = raw.iter().map(|m| m / total).collect();
        Dist::new(1.0, offset, mass).expect("normalized by construction")
    })
}

/// Strategy: an (original, perturbed) pair with arbitrary shape change.
fn perturbation_strategy() -> impl Strategy<Value = (Dist, Dist)> {
    (dist_strategy(), dist_strategy())
}

/// Numerical slack: interpolated inverse CDFs of independently
/// discretized distributions can disagree with the continuous argument of
/// the theorems by a hair.
const EPS: f64 = 1e-9;

proptest! {
    /// Theorem 1 (exact form): convolution with a common delay preserves
    /// the shift of a *pure-shift* perturbation exactly.
    #[test]
    fn theorem1_convolution_preserves_pure_shifts(
        a in dist_strategy(),
        d in dist_strategy(),
        shift in 1i64..10,
    ) {
        let a_pert = a.shift_bins(-shift);
        let out = a.convolve(&d);
        let out_pert = a_pert.convolve(&d);
        let delta_in = max_percentile_shift(&a, &a_pert);
        let delta_out = max_percentile_shift(&out, &out_pert);
        prop_assert!((delta_in - shift as f64).abs() < EPS);
        prop_assert!((delta_out - delta_in).abs() < EPS,
            "conv changed a pure shift: in {delta_in}, out {delta_out}");
    }

    /// Theorem 1 (general form, via the Definition 2 lower bound):
    /// convolution cannot *increase* the shift of an arbitrary-shape
    /// perturbation.
    #[test]
    fn theorem1_convolution_never_increases_delta(
        (a, a_pert) in perturbation_strategy(),
        d in dist_strategy(),
    ) {
        let delta_in = max_percentile_shift(&a, &a_pert);
        let delta_out = max_percentile_shift(&a.convolve(&d), &a_pert.convolve(&d));
        prop_assert!(delta_out <= delta_in + EPS,
            "conv increased delta: in {delta_in}, out {delta_out}");
    }

    /// Theorem 2: the statistical max of two perturbed arrival times has
    /// `Δ ≤ max(Δ1, Δ2)` — for arbitrary shape perturbations.
    #[test]
    fn theorem2_max_bounded_by_worst_input(
        (a1, a1_pert) in perturbation_strategy(),
        (a2, a2_pert) in perturbation_strategy(),
    ) {
        let d1 = max_percentile_shift(&a1, &a1_pert);
        let d2 = max_percentile_shift(&a2, &a2_pert);
        let out = a1.max_independent(&a2);
        let out_pert = a1_pert.max_independent(&a2_pert);
        let d_out = max_percentile_shift(&out, &out_pert);
        prop_assert!(d_out <= d1.max(d2) + EPS,
            "max increased delta: {d_out} > max({d1}, {d2})");
    }

    /// Theorem 3: max with a single perturbed input has `Δ ≤ Δ1`
    /// (the special case `Δ2 = 0`).
    #[test]
    fn theorem3_single_perturbed_input(
        (a1, a1_pert) in perturbation_strategy(),
        a2 in dist_strategy(),
    ) {
        let d1 = max_percentile_shift(&a1, &a1_pert);
        let d_out = max_percentile_shift(
            &a1.max_independent(&a2),
            &a1_pert.max_independent(&a2),
        );
        prop_assert!(d_out <= d1.max(0.0) + EPS, "{d_out} > max({d1}, 0)");
    }
}

/// A tiny random-circuit profile for whole-circuit theorem checks.
fn small_profile() -> Profile {
    Profile {
        name: "tiny",
        inputs: 5,
        outputs: 4,
        nodes: 48,
        edges: 96,
        depth: 7,
    }
}

/// Theorem 4, end to end: at every level of a perturbation front's
/// propagation, the whole-bin front bound `Δmx` over the active front
/// dominates the final (interpolated) shift at the sink.
///
/// The front `Δi` values use [`lattice_shift_bound`]: fractional shifts
/// measured on interpolated CDFs are *not* exactly preserved by the
/// lattice max operator (sub-bin interpolation kinks), which is precisely
/// why the pruned selector uses the whole-bin bound.
#[test]
fn theorem4_front_bound_dominates_sink_shift() {
    let lib = CellLibrary::synthetic_180nm();
    for seed in 0..12u64 {
        let nl = generator::generate(&small_profile(), seed);
        let circuit = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 1.0);
        let base = circuit.ssta();

        for gate_idx in 0..nl.gate_count() {
            let gate = GateId::from_index(gate_idx);
            let overrides = circuit.overrides_for_resize(gate, 1.0);
            let mut walk = ConeWalk::new(circuit.graph(), circuit.delays(), base, overrides);
            let own_level = circuit
                .graph()
                .level(circuit.graph().out_node_of_gate(gate));

            // Record the bound after initialization and after every
            // subsequent level.
            let mut deltas: HashMap<TimingNode, f64> = HashMap::new();
            let mut bounds: Vec<f64> = Vec::new();
            while let Some(report) = walk.step_level() {
                for &n in &report.computed {
                    if n == TimingNode::SINK {
                        continue;
                    }
                    let d =
                        lattice_shift_bound(base.arrival(n), walk.perturbed(n).expect("retained"));
                    deltas.insert(n, d);
                }
                for &n in &report.retired {
                    deltas.remove(&n);
                }
                if report.level > own_level && !deltas.is_empty() {
                    bounds.push(deltas.values().copied().fold(f64::NEG_INFINITY, f64::max));
                }
            }
            // The quantity pruning relies on: the sink shift at the
            // objective percentile (and at other well-massed percentiles).
            // The max shift over *all* p additionally sweeps the extreme
            // tails, where trim-renormalization noise (~1e-12 of mass)
            // maps through nearly-flat CDF regions into visible horizontal
            // noise — outside what the algorithm uses or guarantees.
            let base_sink = base.sink_arrival();
            let pert_sink = walk.sink_arrival().expect("walk ran to the sink");
            // Beyond the front, propagation also merges with *unperturbed*
            // side inputs, which contribute a shift of 0 — so the usable
            // guarantee is `δ_sink ≤ max(Δmx, 0)`. This is exactly what
            // pruning needs: it only ever compares bounds against
            // `Max_S ≥ 0`.
            for p in [0.5, 0.9, 0.99] {
                let sink_shift = statsize_dist::percentile_shift_at(base_sink, pert_sink, p);
                for (k, &bound) in bounds.iter().enumerate() {
                    assert!(
                        sink_shift <= bound.max(0.0) + 1e-6,
                        "seed {seed}, gate {gate_idx}, p={p}: front bound at step \
                         {k} ({bound}) below sink shift ({sink_shift})"
                    );
                }
            }
            // The mean improvement is the percentile average, so it obeys
            // the same bound.
            let mean_shift = base_sink.mean() - pert_sink.mean();
            for &bound in &bounds {
                assert!(mean_shift <= bound.max(0.0) + 1e-6);
            }
        }
    }
}

/// The paper's Figure 4/"case 2" situation: unequal input shifts. The max
/// shift is bounded by the larger input shift and, when the slower input
/// dominates everywhere, equals the dominating input's shift.
#[test]
fn unequal_shifts_follow_the_dominating_input() {
    let lib = CellLibrary::synthetic_180nm();
    let _ = lib;
    let base1 = Dist::new(1.0, 100, vec![0.2, 0.6, 0.2]).unwrap();
    let base2 = Dist::new(1.0, 0, vec![0.2, 0.6, 0.2]).unwrap(); // far earlier
    let p1 = base1.shift_bins(-5);
    let p2 = base2.shift_bins(-2);
    let out = base1.max_independent(&base2);
    let out_p = p1.max_independent(&p2);
    let d = max_percentile_shift(&out, &out_p);
    // Input 1 dominates the max entirely, so the output shift is exactly
    // input 1's shift.
    assert!((d - 5.0).abs() < 1e-12, "expected 5, got {d}");
}

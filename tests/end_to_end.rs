//! End-to-end reproduction of the paper's headline result at test scale:
//! statistical optimization beats deterministic optimization at equal
//! area on the 99-percentile delay (Table 1's "% impr." column is
//! positive), and deterministic optimization builds a wall of
//! near-critical paths (Figure 1).

use statsize::{Objective, Optimizer, SelectorKind, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::{generator, shapes};
use statsize_ssta::paths::enumerate_paths;
use statsize_ssta::run_sta;

/// Runs deterministic then statistical optimization at matched width and
/// returns (deterministic T99, statistical T99).
fn optimize_both(nl: &statsize_netlist::Netlist, dt: f64, iters: usize) -> (f64, f64) {
    let lib = CellLibrary::synthetic_180nm();
    let obj = Objective::percentile(0.99);

    let mut det = TimedCircuit::new(nl, &lib, VariationModel::paper_default(), dt);
    let det_result = Optimizer::new(obj, SelectorKind::Deterministic)
        .with_max_iterations(iters)
        .run(&mut det);

    let mut stat = TimedCircuit::new(nl, &lib, VariationModel::paper_default(), dt);
    let stat_result = Optimizer::new(obj, SelectorKind::Pruned)
        .with_width_limit(det_result.final_width)
        .with_max_iterations(iters)
        .run(&mut stat);

    assert!(
        stat.total_width() <= det.total_width() + 1e-9,
        "statistical run must not exceed the area budget"
    );
    (det_result.final_objective, stat_result.final_objective)
}

#[test]
fn statistical_beats_deterministic_on_a_bundle() {
    // A path bundle is the paper's Figure 1 situation in miniature:
    // deterministic optimization only sees the single critical path and
    // balances it against the rest, building a wall.
    let nl = shapes::path_bundle("b", &[8, 7, 7, 6, 6, 6]);
    let (t_det, t_stat) = optimize_both(&nl, 1.0, 30);
    assert!(
        t_stat <= t_det,
        "statistical {t_stat} must not lose to deterministic {t_det}"
    );
}

#[test]
fn statistical_beats_deterministic_on_a_benchmark_profile() {
    let nl = generator::generate_iscas("c432", 1).expect("known profile");
    let (t_det, t_stat) = optimize_both(&nl, 2.0, 40);
    let impr = 100.0 * (t_det - t_stat) / t_det;
    assert!(
        impr > 0.0,
        "expected positive improvement, got {impr:.2}% (det {t_det}, stat {t_stat})"
    );
}

#[test]
fn deterministic_optimization_builds_a_wall() {
    // After deterministic optimization, the number of near-critical paths
    // must grow (paths get balanced toward the wall); the statistical
    // optimizer at the same area keeps fewer paths near-critical or a
    // better T99.
    let nl = generator::generate_iscas("c432", 4).expect("known profile");
    let lib = CellLibrary::synthetic_180nm();
    let obj = Objective::percentile(0.99);

    let baseline = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 2.0);
    let sta0 = run_sta(baseline.graph(), baseline.delays());
    let wall0 = enumerate_paths(
        baseline.graph(),
        baseline.delays(),
        0.95 * sta0.circuit_delay(),
        100_000,
    )
    .count();

    let mut det = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 2.0);
    let _ = Optimizer::new(obj, SelectorKind::Deterministic)
        .with_max_iterations(60)
        .run(&mut det);
    let sta1 = run_sta(det.graph(), det.delays());
    let wall1 = enumerate_paths(
        det.graph(),
        det.delays(),
        0.95 * sta1.circuit_delay(),
        100_000,
    )
    .count();

    assert!(
        wall1 > wall0,
        "deterministic optimization should crowd paths toward critical: \
         {wall0} -> {wall1} near-critical paths"
    );
}

#[test]
fn optimizing_at_p99_also_helps_the_far_tail() {
    let nl = shapes::path_bundle("b", &[9, 8, 8]);
    let lib = CellLibrary::synthetic_180nm();
    let obj = Objective::percentile(0.99);
    let mut c = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 1.0);
    let t999_before = c.ssta().circuit_delay_percentile(0.999);
    let _ = Optimizer::new(obj, SelectorKind::Pruned)
        .with_max_iterations(20)
        .run(&mut c);
    let t999_after = c.ssta().circuit_delay_percentile(0.999);
    assert!(t999_after < t999_before);
}

#[test]
fn mini_table1_shape_holds_across_seeds() {
    // The Table 1 qualitative claim must be robust to generator seeds,
    // not an artifact of one circuit instance.
    let mut wins = 0;
    let total = 3;
    for seed in 1..=total as u64 {
        let nl = generator::generate_iscas("c432", seed).expect("known profile");
        let (t_det, t_stat) = optimize_both(&nl, 2.0, 25);
        if t_stat <= t_det {
            wins += 1;
        }
    }
    assert!(
        wins >= total - 1,
        "statistical should win at equal area on nearly all seeds ({wins}/{total})"
    );
}

//! Campaign determinism: a sharded multi-circuit campaign must be
//! bit-identical to running each circuit serially — same outcomes, same
//! report bytes — for every shard count and thread budget. This is the
//! corpus-level analogue of `parallel_determinism.rs` and the contract
//! the serve-mode API will schedule onto.

use statsize::{Campaign, CampaignJob, Objective, SelectorKind};
use statsize_bench::campaign::render_report;
use statsize_cells::CellLibrary;
use statsize_netlist::generator::{generate_iscas, generate_scaled, ScaledProfile};
use statsize_netlist::{bench, corpus};

/// The 3-circuit reference corpus: the real c17, an ISCAS-85 profile,
/// and a scaled generated profile.
fn three_circuit_corpus() -> Vec<CampaignJob> {
    vec![
        CampaignJob::new("c17", bench::c17()),
        CampaignJob::new("c432", generate_iscas("c432", 1).unwrap()),
        CampaignJob::new(
            "gen400",
            generate_scaled(&ScaledProfile::with_nodes(400), 1),
        ),
    ]
}

fn reference_campaign() -> Campaign {
    Campaign::new(Objective::percentile(0.99), SelectorKind::Pruned).with_max_iterations(3)
}

#[test]
fn report_is_bit_identical_across_shard_counts() {
    let jobs = three_circuit_corpus();
    let lib = CellLibrary::synthetic_180nm();
    let objective = Objective::percentile(0.99).to_string();

    let serial = reference_campaign().with_shards(1).run(&jobs, &lib);
    let serial_json = render_report(&serial, &objective, false);
    assert!(serial_json.contains("\"name\":\"gen400\""));

    for shards in [2usize, 4] {
        let sharded = reference_campaign().with_shards(shards).run(&jobs, &lib);
        // Struct-level: every schedule-independent field matches.
        assert_eq!(serial.outcomes.len(), sharded.outcomes.len());
        for (a, b) in serial.outcomes.iter().zip(&sharded.outcomes) {
            assert_eq!(
                a.completed().unwrap().deterministic_key(),
                b.completed().unwrap().deterministic_key(),
                "outcome diverged at {shards} shards"
            );
        }
        // Byte-level: the emitted report is identical, bit for bit.
        assert_eq!(
            serial_json,
            render_report(&sharded, &objective, false),
            "report bytes diverged at {shards} shards"
        );
    }

    // A widened thread budget changes the per-shard selector thread
    // count (and with it the schedule-dependent pruned/completed split),
    // but not one byte of the deterministic report.
    let budgeted = reference_campaign()
        .with_shards(2)
        .with_total_threads(8)
        .run(&jobs, &lib);
    assert_eq!(budgeted.threads_per_shard, 4);
    assert_eq!(
        serial_json,
        render_report(&budgeted, &objective, false),
        "report bytes diverged under a wider thread budget"
    );
}

#[test]
fn disk_corpus_matches_the_in_memory_corpus() {
    // Writing the corpus to .bench files and campaigning over the loaded
    // copies must reproduce the in-memory outcomes exactly: the format
    // round-trip preserves everything the timing model sees.
    let jobs = three_circuit_corpus();
    let dir = std::env::temp_dir().join(format!("statsize-campdet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for job in &jobs {
        std::fs::write(
            dir.join(format!("{}.bench", job.name)),
            bench::write(job.netlist().unwrap()),
        )
        .unwrap();
    }
    let loaded: Vec<CampaignJob> = corpus::load_dir(&dir)
        .unwrap()
        .into_iter()
        .map(|e| CampaignJob::new(e.name, e.netlist))
        .collect();
    std::fs::remove_dir_all(&dir).unwrap();

    let lib = CellLibrary::synthetic_180nm();
    let objective = Objective::percentile(0.99).to_string();
    let from_memory = reference_campaign().with_shards(2).run(&jobs, &lib);
    let from_disk = reference_campaign().with_shards(2).run(&loaded, &lib);
    assert_eq!(
        render_report(&from_memory, &objective, false),
        render_report(&from_disk, &objective, false)
    );
}

#[test]
fn large_profile_campaign_is_sharded_and_deterministic() {
    // A >10k-node scaled profile alongside small circuits: the campaign
    // must handle corpus members two orders of magnitude apart. The
    // deterministic selector keeps a 12k-node optimization cheap enough
    // for a debug-profile test (one STA pass per iteration).
    let jobs = vec![
        CampaignJob::new("c17", bench::c17()),
        CampaignJob::new(
            "gen12000",
            generate_scaled(&ScaledProfile::with_nodes(12_000), 1),
        ),
        CampaignJob::new("c432", generate_iscas("c432", 1).unwrap()),
    ];
    assert!(jobs[1].netlist().unwrap().stats().timing_nodes > 10_000);
    let lib = CellLibrary::synthetic_180nm();
    let campaign = Campaign::new(Objective::percentile(0.99), SelectorKind::Deterministic)
        .with_max_iterations(2);

    let sharded = campaign.with_shards(2).run(&jobs, &lib);
    assert_eq!(sharded.shards, 2);
    let big = sharded.outcomes[1].completed().expect("gen12000 completes");
    assert_eq!(big.name, "gen12000");
    assert!(big.nodes > 10_000);
    assert!(
        big.final_objective < big.initial_objective,
        "sizing must improve the 12k-node circuit"
    );

    let serial = campaign.with_shards(1).run(&jobs, &lib);
    for (a, b) in serial.outcomes.iter().zip(&sharded.outcomes) {
        assert_eq!(
            a.completed().unwrap().deterministic_key(),
            b.completed().unwrap().deterministic_key()
        );
    }
}

//! Cross-campaign result store, end to end: a second identical campaign
//! is served entirely from the store with a byte-identical default
//! report; a delta campaign (same circuits, different `dt` or objective)
//! warm-starts from the stored sizing vectors deterministically — the
//! same trajectory for every shard schedule — and never ends worse than
//! a cold run; torn store tails are quarantined, their scenarios re-run;
//! read-only stores serve hits without growing the file.

use statsize::{
    Campaign, CampaignJob, JobOutcome, Journal, Objective, OutcomeKey, ResultStore, SelectorKind,
};
use statsize_bench::campaign::render_report;
use statsize_cells::CellLibrary;
use statsize_netlist::bench;
use statsize_netlist::generator::{generate_iscas, generate_scaled, ScaledProfile};
use std::path::PathBuf;

/// A unique scratch directory (removed by the caller when done).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("statsize-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn corpus() -> Vec<CampaignJob> {
    vec![
        CampaignJob::new("c17", bench::c17()),
        CampaignJob::new(
            "gen200",
            generate_scaled(&ScaledProfile::with_nodes(200), 1),
        ),
    ]
}

fn campaign() -> Campaign {
    Campaign::new(Objective::percentile(0.99), SelectorKind::Pruned).with_max_iterations(2)
}

fn keys(outcomes: &[JobOutcome]) -> Vec<OutcomeKey> {
    outcomes
        .iter()
        .map(|o| match o {
            JobOutcome::Completed(c) => c.deterministic_key(),
            other => panic!("expected completed outcomes only, got {other:?}"),
        })
        .collect()
}

#[test]
fn second_identical_run_is_served_entirely_from_the_store() {
    let dir = scratch_dir("replay");
    let path = dir.join("store.jsonl");
    let jobs = corpus();
    let lib = CellLibrary::synthetic_180nm();

    let mut store = ResultStore::create(&path).expect("create store");
    let cold = campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    assert_eq!(cold.cached, 0, "an empty store cannot serve hits");
    drop(store);

    let mut store = ResultStore::open(&path).expect("reopen store");
    assert_eq!(store.len(), jobs.len(), "every completion was recorded");
    let replay = campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    assert_eq!(replay.cached, jobs.len(), "every job replays from cache");
    for outcome in &replay.outcomes {
        let JobOutcome::Completed(c) = outcome else {
            panic!("cached replay must complete: {outcome:?}");
        };
        assert!(c.cached, "replayed outcomes carry the runtime marker");
    }
    assert_eq!(
        keys(&cold.outcomes),
        keys(&replay.outcomes),
        "cache hits reproduce the deterministic outcome exactly"
    );
    // The default (timing-free) report is byte-identical: cache
    // provenance is runtime-only and must not leak into the bytes CI
    // diffs.
    assert_eq!(
        render_report(&cold, "T(99%)", false),
        render_report(&replay, "T(99%)", false)
    );
    drop(store);

    // Exact hits never re-append: a third open sees the same entries.
    let store = ResultStore::open(&path).expect("reopen after replay");
    assert_eq!(store.len(), jobs.len(), "replays do not grow the store");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_keys_isolate_scenarios() {
    let dir = scratch_dir("isolate");
    let path = dir.join("store.jsonl");
    let jobs = corpus();
    let lib = CellLibrary::synthetic_180nm();

    let mut store = ResultStore::create(&path).expect("create store");
    campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    drop(store);

    // Same circuits, different optimizer configuration (iteration cap):
    // not an exact hit — but close enough to warm-start.
    let mut store = ResultStore::open(&path).expect("reopen store");
    let delta = Campaign::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_max_iterations(3)
        .run_with_store(&jobs, &lib, None, Some(&mut store));
    assert_eq!(delta.cached, 0, "a changed iteration cap misses the cache");
    for outcome in &delta.outcomes {
        let JobOutcome::Completed(c) = outcome else {
            panic!("delta run must complete: {outcome:?}");
        };
        assert!(c.warm_started, "the same circuit class warm-starts");
    }
    drop(store);

    // A different corpus seed shares nothing: no hits, no warm starts
    // (the generated netlist content differs, and c17's stored scenario
    // carries the old seed in its key).
    let mut store = ResultStore::open(&path).expect("reopen store");
    let reseeded = vec![
        CampaignJob::new("c17", bench::c17()),
        CampaignJob::new(
            "gen200",
            generate_scaled(&ScaledProfile::with_nodes(200), 7),
        ),
    ];
    let other =
        campaign()
            .with_corpus_seed(7)
            .run_with_store(&reseeded, &lib, None, Some(&mut store));
    assert_eq!(other.cached, 0, "a different seed is a different scenario");
    for outcome in &other.outcomes {
        let JobOutcome::Completed(c) = outcome else {
            panic!("reseeded run must complete: {outcome:?}");
        };
        assert!(!c.warm_started, "no warm candidates across seeds");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_started_delta_runs_are_deterministic_and_no_worse_than_cold() {
    let dir = scratch_dir("warm");
    let path = dir.join("store.jsonl");
    let jobs = vec![
        CampaignJob::new(
            "c432",
            generate_iscas("c432", 1).expect("c432 is a known ISCAS-85 profile"),
        ),
        CampaignJob::new(
            "c880",
            generate_iscas("c880", 1).expect("c880 is a known ISCAS-85 profile"),
        ),
    ];
    let lib = CellLibrary::synthetic_180nm();

    let mut store = ResultStore::create(&path).expect("create store");
    campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    drop(store);

    // The delta scenario: same circuits, coarser time step. Cold
    // reference first, then warm runs across shard schedules.
    let delta = || campaign().with_dt(2.5);
    let cold = delta().run(&jobs, &lib);

    let mut reports = Vec::new();
    for shards in [1usize, 2] {
        // Read-only: the first leg must not record its delta results
        // and turn the second leg into exact cache hits.
        let mut store = ResultStore::open_read_only(&path).expect("reopen store");
        let report =
            delta()
                .with_shards(shards)
                .run_with_store(&jobs, &lib, None, Some(&mut store));
        assert_eq!(report.cached, 0, "a changed dt misses the exact key");
        reports.push(report);
    }
    assert_eq!(
        keys(&reports[0].outcomes),
        keys(&reports[1].outcomes),
        "warm starts are bit-identical across shard schedules"
    );
    assert_eq!(
        render_report(&reports[0], "T(99%)", false),
        render_report(&reports[1], "T(99%)", false),
        "default report bytes are schedule-independent"
    );
    for (warm, cold) in reports[0].outcomes.iter().zip(&cold.outcomes) {
        let (JobOutcome::Completed(w), JobOutcome::Completed(c)) = (warm, cold) else {
            panic!("both legs must complete: {warm:?} vs {cold:?}");
        };
        assert!(w.warm_started, "{}: delta run must warm-start", w.name);
        assert!(
            w.initial_objective <= c.initial_objective,
            "{}: the warm seed starts at (or below) the cold initial point",
            w.name
        );
        assert!(
            w.final_objective <= c.final_objective + 1e-9,
            "{}: warm-started objective must be no worse than cold \
             ({} vs {} ps)",
            w.name,
            w.final_objective,
            c.final_objective
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_store_tail_is_quarantined_and_the_scenario_reruns() {
    let dir = scratch_dir("torn");
    let path = dir.join("store.jsonl");
    let jobs = corpus();
    let lib = CellLibrary::synthetic_180nm();

    let mut store = ResultStore::create(&path).expect("create store");
    campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    drop(store);

    // Tear the final record in half — the shape a crash mid-append
    // leaves behind.
    let text = std::fs::read_to_string(&path).unwrap();
    let whole = text.strip_suffix('\n').unwrap();
    let last_start = whole.rfind('\n').unwrap() + 1;
    let torn = format!(
        "{}{}\n",
        &whole[..last_start],
        &whole[last_start..last_start + (whole.len() - last_start) / 2]
    );
    std::fs::write(&path, torn).unwrap();

    let mut store = ResultStore::open(&path).expect("torn tails are not fatal");
    assert_eq!(store.len(), jobs.len() - 1, "the torn record is dropped");
    assert_eq!(store.corrupt_entries().len(), 1, "and reported");
    let report = campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    assert_eq!(report.cached, jobs.len() - 1, "intact scenarios replay");
    assert!(!report.has_faults(), "the torn scenario re-runs cleanly");
    drop(store);

    // The re-run re-recorded the torn scenario after the torn line (the
    // store is append-only — quarantine is not repair, so the torn line
    // itself stays on disk and stays reported), and the next run is
    // fully cached again.
    let mut store = ResultStore::open(&path).expect("reopen healed store");
    assert_eq!(
        store.corrupt_entries().len(),
        1,
        "the torn line persists in the append-only file"
    );
    let healed = campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    assert_eq!(healed.cached, jobs.len(), "the scenario re-recorded");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_only_stores_serve_hits_without_growing_the_file() {
    let dir = scratch_dir("readonly");
    let path = dir.join("store.jsonl");
    let jobs = corpus();
    let lib = CellLibrary::synthetic_180nm();

    let mut store = ResultStore::create(&path).expect("create store");
    campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    drop(store);
    let frozen = std::fs::read(&path).unwrap();

    // Exact replays and a delta run (which would record in read-write
    // mode) both leave a read-only store's bytes untouched.
    let mut store = ResultStore::open_read_only(&path).expect("open read-only");
    let replay = campaign().run_with_store(&jobs, &lib, None, Some(&mut store));
    assert_eq!(replay.cached, jobs.len());
    let delta = campaign()
        .with_dt(2.5)
        .run_with_store(&jobs, &lib, None, Some(&mut store));
    assert_eq!(delta.cached, 0);
    drop(store);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        frozen,
        "read-only mode never appends"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn journal_and_store_compose() {
    // A campaign can checkpoint to a journal and consult a store at
    // once; a resumed run restores journaled jobs (journal precedence)
    // and the store still serves the rest.
    let dir = scratch_dir("compose");
    let store_path = dir.join("store.jsonl");
    let journal_path = dir.join("journal.jsonl");
    let jobs = corpus();
    let lib = CellLibrary::synthetic_180nm();

    let mut store = ResultStore::create(&store_path).expect("create store");
    let mut journal = Journal::create(&journal_path).expect("create journal");
    let cold = campaign().run_with_store(&jobs, &lib, Some(&mut journal), Some(&mut store));
    drop((store, journal));

    // Resume with both: every job is already journaled, so the journal
    // answers first and the store's cache counter stays at zero.
    let mut store = ResultStore::open(&store_path).expect("reopen store");
    let mut journal = Journal::resume(&journal_path).expect("resume journal");
    let resumed = campaign().run_with_store(&jobs, &lib, Some(&mut journal), Some(&mut store));
    assert_eq!(resumed.resumed, jobs.len(), "the journal answers first");
    assert_eq!(resumed.cached, 0);
    assert_eq!(keys(&cold.outcomes), keys(&resumed.outcomes));
    drop((store, journal));

    // A fresh journal with the same store: now the store answers, and
    // the cache hits are journaled so a *resume* of this run would also
    // skip them.
    let fresh_journal_path = dir.join("journal2.jsonl");
    let mut store = ResultStore::open(&store_path).expect("reopen store");
    let mut journal = Journal::create(&fresh_journal_path).expect("fresh journal");
    let replay = campaign().run_with_store(&jobs, &lib, Some(&mut journal), Some(&mut store));
    assert_eq!(replay.cached, jobs.len());
    drop((store, journal));
    let journal = Journal::resume(&fresh_journal_path).expect("resume fresh journal");
    assert_eq!(journal.len(), jobs.len(), "cache hits are checkpointed");
    assert_eq!(keys(&cold.outcomes), keys(&replay.outcomes));
    std::fs::remove_dir_all(&dir).unwrap();
}

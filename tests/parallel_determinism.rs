//! Determinism suite for the work-stealing parallel candidate sweeps.
//!
//! The contract under test: for every thread count, the parallel
//! selectors return **bit-identical** `Selection`s to the serial
//! reference sweep — same gates, same sensitivities, same order — and
//! the `PruneStats` accounting invariant `pruned + completed ==
//! candidates` holds (the *split* between the two counters is allowed to
//! differ across schedules; the selections are not).

use statsize::{BruteForceSelector, Objective, PruneStats, PrunedSelector, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::generator;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_stats_invariant(stats: &PruneStats, ctx: &str) {
    assert_eq!(
        stats.pruned + stats.completed,
        stats.candidates,
        "{ctx}: every candidate must end exactly one way, got {stats:?}"
    );
}

/// Serial-vs-parallel bit-identity of `select` and `select_top_k` on one
/// generated ISCAS profile, plus the stats invariant at every thread
/// count.
fn check_pruned_profile(name: &str, seed: u64, dt: f64, k: usize) {
    let nl = generator::generate_iscas(name, seed).unwrap();
    let lib = CellLibrary::synthetic_180nm();
    let circuit = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), dt);
    let obj = Objective::percentile(0.99);
    let selector = PrunedSelector::new(1.0);

    let (want_best, serial_stats) = selector.with_threads(1).select_with_stats(&circuit, obj);
    let want_best = want_best.expect("minimum-size profiles always have an improving gate");
    assert_stats_invariant(&serial_stats, &format!("{name}: serial"));
    let want_top = selector.with_threads(1).select_top_k(&circuit, obj, k);
    assert_eq!(
        want_top.first(),
        Some(&want_best),
        "{name}: top-1 is the argmax"
    );

    for threads in THREAD_COUNTS {
        let par = selector.with_threads(threads);
        let (got_best, stats) = par.select_with_stats(&circuit, obj);
        assert_eq!(
            Some(want_best),
            got_best,
            "{name}: select must be bit-identical at {threads} threads"
        );
        assert_stats_invariant(&stats, &format!("{name}: {threads} threads"));
        assert_eq!(stats.candidates, serial_stats.candidates, "{name}");

        let got_top = par.select_top_k(&circuit, obj, k);
        assert_eq!(
            want_top, got_top,
            "{name}: select_top_k({k}) must be bit-identical at {threads} threads"
        );
    }
}

#[test]
fn pruned_parallel_is_bit_identical_on_c432() {
    check_pruned_profile("c432", 1, 2.0, 4);
}

#[test]
fn pruned_parallel_is_bit_identical_on_c880() {
    // Coarser lattice than the bench profile: identical code paths and
    // scheduling behavior, smaller supports, so the debug-mode suite
    // stays fast.
    check_pruned_profile("c880", 1, 3.0, 4);
}

#[test]
fn brute_force_parallel_is_bit_identical_on_c432() {
    let nl = generator::generate_iscas("c432", 1).unwrap();
    let lib = CellLibrary::synthetic_180nm();
    let circuit = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 3.0);
    let obj = Objective::percentile(0.99);
    let want = BruteForceSelector::new(1.0)
        .with_threads(1)
        .all_sensitivities(&circuit, obj);
    let got = BruteForceSelector::new(1.0)
        .with_threads(4)
        .all_sensitivities(&circuit, obj);
    assert_eq!(want, got, "full sensitivity profile must be bit-identical");
}

#[test]
fn thread_counts_beyond_the_candidate_pool_are_safe() {
    // More workers than candidates (c17 has 6 gates): the sweep caps the
    // worker count and still returns the exact serial result.
    let nl = statsize_netlist::bench::c17();
    let lib = CellLibrary::synthetic_180nm();
    let circuit = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 1.0);
    let obj = Objective::percentile(0.99);
    let selector = PrunedSelector::new(1.0);
    let want = selector.with_threads(1).select_top_k(&circuit, obj, 3);
    for threads in [7, 64, 1024] {
        let (got, stats) = selector
            .with_threads(threads)
            .select_top_k_with_stats(&circuit, obj, 3);
        assert_eq!(want, got, "threads={threads}");
        assert_stats_invariant(&stats, &format!("c17 @ {threads} threads"));
    }
}

//! Session-layer integration tests: the serve-mode acceptance bar.
//!
//! * Every [`Session::what_if`] answer must be **bit-identical** to a
//!   from-scratch [`SstaAnalysis::run`] over the mutated circuit — the
//!   speculative path (incremental update + exact undo) is an
//!   optimization, never an approximation.
//! * Branching: `fork` → diverge → `rollback` restores byte-identical
//!   state, both through the core API and through the JSONL front-end.
//! * Replay: a forked session's committed result is bit-identical to a
//!   fresh session replaying the same commit log.

use statsize::{Deadline, Design, Objective, Optimizer, SelectorKind, Session};
use statsize_bench::serve::Server;
use statsize_cells::{CellLibrary, DelayModel, GateSizes};
use statsize_netlist::{bench, GateId, Netlist};
use statsize_ssta::{ArcDelays, SstaAnalysis, TimingGraph};
use std::sync::Arc;

fn design(name: &str, netlist: Netlist) -> Design {
    Design::new(name, netlist, CellLibrary::synthetic_180nm())
}

fn optimizer() -> Optimizer {
    Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned).with_max_iterations(3)
}

/// Output net names of every gate in the design, in gate-id order.
fn gate_names(design: &Design) -> Vec<String> {
    let netlist = design.netlist();
    netlist
        .gate_ids()
        .map(|g| netlist.net(netlist.gate(g).output()).name().to_string())
        .collect()
}

/// Times the design from scratch — fresh sizes, fresh delays, fresh
/// [`SstaAnalysis::run`] — after applying `resizes`, and returns
/// `(objective, total_width, area)`.
fn from_scratch(
    design: &Design,
    resizes: &[(GateId, f64)],
    objective: Objective,
) -> (f64, f64, f64) {
    let netlist = design.netlist();
    let model = DelayModel::new(design.library(), netlist);
    let mut sizes = GateSizes::minimum(netlist);
    for &(gate, delta_w) in resizes {
        sizes.resize(gate, delta_w);
    }
    let graph = TimingGraph::build(netlist);
    let delays = ArcDelays::compute(netlist, &model, &sizes, design.variation(), design.dt());
    let ssta = SstaAnalysis::run(&graph, &delays);
    (
        objective.value(ssta.sink_arrival()),
        sizes.total_width(),
        model.area(netlist, &sizes),
    )
}

/// The acceptance criterion: for every gate of c17 (exhaustively) and a
/// spread of c499 gates, `what_if` — served off a warm session that
/// already carries committed resizes — returns exactly the bits a full
/// re-analysis of the mutated circuit produces.
#[test]
fn what_if_matches_from_scratch_analysis_bit_for_bit() {
    let cases: &[(&str, Netlist, usize)] = &[
        ("c17", bench::c17(), 1),    // every gate
        ("c499", bench::c499(), 37), // every 37th gate (5 probes)
    ];
    for (name, netlist, stride) in cases {
        let design = Arc::new(design(name, netlist.clone()));
        let mut session = Session::open(Arc::clone(&design), optimizer());

        // Warm the session: commit a couple of resizes first, so the
        // speculative path runs over a non-trivial incremental state.
        let names = gate_names(&design);
        session.commit(&names[0], 1.0).unwrap();
        session.commit(&names[names.len() / 2], 0.5).unwrap();
        let committed: Vec<(GateId, f64)> = session.committed().to_vec();

        for probe in names.iter().step_by(*stride) {
            let delta_w = 0.75;
            let report = session.what_if(probe, delta_w).unwrap();

            let gate = design.gate_by_output(probe).unwrap();
            let mut resizes = committed.clone();
            resizes.push((gate, delta_w));
            let (objective, total_width, area) =
                from_scratch(&design, &resizes, session.optimizer().objective());

            assert_eq!(
                report.objective.to_bits(),
                objective.to_bits(),
                "{name}: what_if({probe}) objective drifted from a from-scratch analysis"
            );
            assert_eq!(report.total_width.to_bits(), total_width.to_bits());
            assert_eq!(report.area.to_bits(), area.to_bits());

            // And the speculation left no trace: the session still
            // reports the pre-probe state from scratch.
            let info = session.info().unwrap();
            let (objective, ..) =
                from_scratch(&design, &committed, session.optimizer().objective());
            assert_eq!(info.objective.to_bits(), objective.to_bits());
        }
    }
}

/// Satellite: fork → diverge → rollback restores byte-identical state.
/// The probe is a `what_if` report compared bit-for-bit, which can only
/// agree if the full timing state (not just the summary) was restored.
#[test]
fn fork_diverge_rollback_restores_identical_state() {
    let design = Arc::new(design("c499", bench::c499()));
    let mut main = Session::open(Arc::clone(&design), optimizer());
    let names = gate_names(&design);

    main.commit(&names[3], 1.0).unwrap();
    main.snapshot("base").unwrap();
    let probe_before = main.what_if(&names[10], 0.5).unwrap();
    let info_before = main.info().unwrap();

    // Diverge on both sides of the fork.
    let mut fork = main.fork().unwrap();
    fork.commit(&names[20], 2.0).unwrap();
    main.commit(&names[40], 1.5).unwrap();
    main.step(Deadline::none()).unwrap();
    assert_ne!(
        main.info().unwrap(),
        info_before,
        "divergence should be visible"
    );

    // Rollback restores the snapshot bits; the fork is untouched.
    main.rollback("base").unwrap();
    assert_eq!(main.info().unwrap(), info_before);
    let probe_after = main.what_if(&names[10], 0.5).unwrap();
    assert_eq!(probe_before, probe_after);
    assert_eq!(fork.committed().len(), 2, "fork keeps its own trajectory");
}

/// Satellite: a forked session that keeps optimizing commits the same
/// bits as a fresh session replaying its commit log move by move.
#[test]
fn forked_session_matches_fresh_replay_of_its_commits() {
    let design = Arc::new(design("c1355", bench::c1355()));
    let mut main = Session::open(Arc::clone(&design), optimizer());
    let names = gate_names(&design);

    main.commit(&names[7], 1.0).unwrap();
    let mut fork = main.fork().unwrap();
    fork.step(Deadline::none()).unwrap();
    fork.commit(&names[100], 0.5).unwrap();

    let mut replay = Session::open(Arc::clone(&design), optimizer());
    for &(gate, delta_w) in fork.committed() {
        let netlist = design.netlist();
        let name = netlist.net(netlist.gate(gate).output()).name().to_string();
        replay.commit_gate(gate, &name, delta_w).unwrap();
    }

    let forked = fork.info().unwrap();
    let replayed = replay.info().unwrap();
    assert_eq!(forked.objective.to_bits(), replayed.objective.to_bits());
    assert_eq!(forked.total_width.to_bits(), replayed.total_width.to_bits());
    assert_eq!(forked.area.to_bits(), replayed.area.to_bits());
    let probe = &names[60];
    assert_eq!(
        fork.what_if(probe, 0.25).unwrap(),
        replay.what_if(probe, 0.25).unwrap()
    );
}

/// The same branching contract through the JSONL front-end: after
/// fork + divergence + rollback, a `query` response is byte-identical
/// to the one captured at the snapshot, across thread budgets.
#[test]
fn serve_rollback_query_is_byte_identical_across_thread_budgets() {
    let script = [
        r#"{"id":1,"op":"load","design":"c17"}"#,
        r#"{"id":2,"op":"open","session":"main","design":"c17","iters":3}"#,
        r#"{"id":3,"op":"commit","session":"main","gate":"10","delta_w":1.0}"#,
        r#"{"id":4,"op":"snapshot","session":"main","name":"base"}"#,
        r#"{"id":99,"op":"query","session":"main"}"#,
        r#"{"id":5,"op":"fork","session":"alt","from":"main"}"#,
        r#"{"id":6,"op":"commit","session":"alt","gate":"16","delta_w":2.0}"#,
        r#"{"id":7,"op":"step","session":"main"}"#,
        r#"{"id":8,"op":"rollback","session":"main","name":"base"}"#,
        r#"{"id":99,"op":"query","session":"main"}"#,
    ];
    let mut transcripts = Vec::new();
    for threads in [0usize, 1, 4] {
        let mut server = Server::new().with_total_threads(threads);
        let responses: Vec<String> = script
            .iter()
            .filter_map(|line| server.handle_line(line))
            .collect();
        let queries: Vec<&String> = responses
            .iter()
            .filter(|r| r.contains(r#""op":"query""#))
            .collect();
        assert_eq!(queries.len(), 2);
        assert_eq!(
            queries[0], queries[1],
            "rollback must restore the exact pre-divergence query bytes (threads={threads})"
        );
        transcripts.push(responses.join("\n"));
    }
    assert!(
        transcripts.windows(2).all(|w| w[0] == w[1]),
        "serve transcripts must be byte-identical for every thread budget"
    );
}

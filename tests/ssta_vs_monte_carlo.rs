//! Cross-validation of the SSTA engine against Monte-Carlo simulation —
//! the paper's Section 4 evidence that optimizing the DAC'03 bound is
//! sound ("an acceptable difference, especially for the 99-percentile
//! point (< 1%)").

use statsize_cells::{CellLibrary, DelayModel, GateSizes, VariationModel};
use statsize_netlist::{generator, shapes, Netlist};
use statsize_ssta::{ArcDelays, MonteCarlo, SamplingMode, SstaAnalysis, TimingGraph};

struct Setup {
    graph: TimingGraph,
    delays: ArcDelays,
    ssta: SstaAnalysis,
    variation: VariationModel,
}

fn setup(nl: &Netlist, dt: f64) -> Setup {
    let lib = CellLibrary::synthetic_180nm();
    let model = DelayModel::new(&lib, nl);
    let sizes = GateSizes::minimum(nl);
    let variation = VariationModel::paper_default();
    let graph = TimingGraph::build(nl);
    let delays = ArcDelays::compute(nl, &model, &sizes, &variation, dt);
    let ssta = SstaAnalysis::run(&graph, &delays);
    Setup {
        graph,
        delays,
        ssta,
        variation,
    }
}

#[test]
fn bound_is_tight_on_tree_like_circuits() {
    // A balanced tree has no reconvergence, so the independence
    // approximation is exact: SSTA must match per-arc MC to within
    // discretization and sampling noise at every percentile.
    let nl = shapes::balanced_tree("t", 4, statsize_netlist::GateKind::Nand);
    let s = setup(&nl, 0.5);
    let mc =
        MonteCarlo::new(120_000, 7, SamplingMode::PerArc).run(&s.graph, &s.delays, &s.variation);
    for p in [0.5, 0.9, 0.99] {
        let bound = s.ssta.circuit_delay_percentile(p);
        let sampled = mc.percentile(p);
        let rel = (bound - sampled).abs() / sampled;
        assert!(
            rel < 0.01,
            "p={p}: bound {bound} vs MC {sampled} ({rel:.4})"
        );
    }
}

#[test]
fn bound_is_conservative_on_reconvergent_circuits() {
    // Diamonds and grids have strong reconvergent correlation; the bound
    // must stay above per-arc MC at every percentile (stochastic
    // dominance of the bound).
    for nl in [shapes::diamond("d", 8), shapes::grid("g", 5, 5)] {
        let s = setup(&nl, 0.5);
        let mc =
            MonteCarlo::new(60_000, 3, SamplingMode::PerArc).run(&s.graph, &s.delays, &s.variation);
        for p in [0.25, 0.5, 0.75, 0.9, 0.99] {
            let bound = s.ssta.circuit_delay_percentile(p);
            let sampled = mc.percentile(p);
            assert!(
                bound >= sampled - 0.5, // half a lattice step of slack
                "{}: p={p}: bound {bound} below MC {sampled}",
                nl.name()
            );
        }
    }
}

#[test]
fn bound_is_close_on_a_benchmark_profile() {
    // The paper's <1% claim at the 99-percentile, on a c432-scale
    // circuit under the matching (per-arc) sampling model.
    let nl = generator::generate_iscas("c432", 1).expect("known profile");
    let s = setup(&nl, 1.0);
    let mc =
        MonteCarlo::new(150_000, 9, SamplingMode::PerArc).run(&s.graph, &s.delays, &s.variation);
    let bound = s.ssta.circuit_delay_percentile(0.99);
    let sampled = mc.percentile(0.99);
    let rel = (bound - sampled) / sampled;
    assert!(
        (-0.002..0.02).contains(&rel),
        "T99: bound {bound} vs MC {sampled} ({:+.2}%)",
        rel * 100.0
    );
}

#[test]
fn mean_and_variance_track_monte_carlo_on_a_chain() {
    let nl = shapes::chain("c", 12);
    let s = setup(&nl, 0.25);
    let mc =
        MonteCarlo::new(120_000, 11, SamplingMode::PerGate).run(&s.graph, &s.delays, &s.variation);
    let sink = s.ssta.sink_arrival();
    assert!(
        (sink.mean() - mc.mean()).abs() / mc.mean() < 0.005,
        "mean: {} vs {}",
        sink.mean(),
        mc.mean()
    );
    assert!(
        (sink.std_dev() - mc.std_dev()).abs() / mc.std_dev() < 0.05,
        "sigma: {} vs {}",
        sink.std_dev(),
        mc.std_dev()
    );
}

#[test]
fn per_gate_sampling_is_no_larger_than_bound_at_high_percentiles() {
    // Per-gate sampling correlates a gate's arcs, which the bound also
    // ignores; the bound must still dominate at the objective percentile.
    let nl = generator::generate_iscas("c880", 2).expect("known profile");
    let s = setup(&nl, 2.0);
    let mc =
        MonteCarlo::new(40_000, 13, SamplingMode::PerGate).run(&s.graph, &s.delays, &s.variation);
    let bound = s.ssta.circuit_delay_percentile(0.99);
    let sampled = mc.percentile(0.99);
    assert!(
        bound >= sampled - 2.0,
        "T99 bound {bound} below per-gate MC {sampled}"
    );
}

//! Fault-tolerant campaign execution, end to end and without fault
//! injection: malformed corpus files are quarantined (never fatal),
//! deadline overruns become structured `TimedOut` outcomes (degrading to
//! a fallback selector when one is configured), and a checkpointed
//! campaign resumed from its journal reproduces the uninterrupted report
//! byte for byte — even when the journal itself has a corrupt entry.
//!
//! The companion suite `fault_injection.rs` (behind the `failpoints`
//! feature) covers the faults that need in-process injection: forced
//! panics and forced deadline overruns at named sites.

use statsize::{Campaign, CampaignJob, JobOutcome, Journal, Objective, SelectorKind};
use statsize_bench::campaign::render_report;
use statsize_cells::CellLibrary;
use statsize_netlist::generator::{generate_scaled, ScaledProfile};
use statsize_netlist::{bench, corpus};
use std::path::PathBuf;
use std::time::Duration;

/// A unique scratch directory (removed by the caller when done).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("statsize-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn reference_campaign() -> Campaign {
    Campaign::new(Objective::percentile(0.99), SelectorKind::Pruned).with_max_iterations(2)
}

fn two_circuit_corpus() -> Vec<CampaignJob> {
    vec![
        CampaignJob::new("c17", bench::c17()),
        CampaignJob::new(
            "gen200",
            generate_scaled(&ScaledProfile::with_nodes(200), 1),
        ),
    ]
}

#[test]
fn malformed_bench_files_are_quarantined_not_fatal() {
    // A corpus directory with one good file and three classes of broken
    // input: truncated mid-gate, binary garbage, and empty. The lenient
    // loader must keep the good circuit, reject the rest with per-file
    // errors, and the campaign must account for every file — the broken
    // ones as `skipped` outcomes — without panicking.
    let dir = scratch_dir("corpus");
    std::fs::write(dir.join("c17.bench"), bench::C17).unwrap();
    std::fs::write(
        dir.join("truncated.bench"),
        &bench::C17[..bench::C17.len() / 2],
    )
    .unwrap();
    std::fs::write(dir.join("garbage.bench"), "\u{0}\u{1}!! not a netlist").unwrap();
    std::fs::write(dir.join("empty.bench"), "").unwrap();

    let loaded = corpus::load_dir_lenient(&dir).expect("directory itself is readable");
    assert_eq!(loaded.entries.len(), 1);
    assert_eq!(loaded.rejected.len(), 3);

    let mut jobs: Vec<CampaignJob> = loaded
        .entries
        .into_iter()
        .map(|e| CampaignJob::new(e.name, e.netlist))
        .collect();
    for err in &loaded.rejected {
        let name = err
            .path()
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        jobs.push(CampaignJob::quarantined(name, err.to_string()));
    }
    std::fs::remove_dir_all(&dir).unwrap();

    let lib = CellLibrary::synthetic_180nm();
    let report = reference_campaign().run(&jobs, &lib);
    let counts = report.counts();
    assert_eq!(counts.completed, 1);
    assert_eq!(counts.skipped, 3);
    assert_eq!(counts.failed, 0);
    assert!(!report.has_faults(), "skips are not faults");

    let json = render_report(&report, "T(99%)", false);
    assert!(json.contains("\"status\":\"completed\""));
    assert!(json.contains("\"name\":\"truncated.bench\""));
    assert!(json.contains("\"status\":\"skipped\""));
    assert!(json.contains("\"skipped\":3"));

    // The strict loader must still refuse the same directory outright.
    let dir = scratch_dir("corpus-strict");
    std::fs::write(dir.join("garbage.bench"), "!! not a netlist").unwrap();
    assert!(corpus::load_dir(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_deadline_times_out_with_structured_outcomes() {
    // An already-expired budget: every job must surface as `TimedOut`
    // (not a panic, not a silent partial result), with the configured
    // deadline recorded in the outcome.
    let jobs = two_circuit_corpus();
    let lib = CellLibrary::synthetic_180nm();
    let report = reference_campaign()
        .with_job_deadline(Duration::ZERO)
        .run(&jobs, &lib);
    assert!(report.has_faults());
    for outcome in &report.outcomes {
        match outcome {
            JobOutcome::TimedOut(t) => {
                assert_eq!(t.deadline, Duration::ZERO);
                assert_eq!(t.iterations_committed, 0);
                assert!(!t.fallback_attempted);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    // With a fallback configured but the budget still zero, the fallback
    // attempt is made (and recorded) but cannot beat the clock either.
    let report = reference_campaign()
        .with_job_deadline(Duration::ZERO)
        .with_deadline_fallback(SelectorKind::Deterministic)
        .run(&jobs, &lib);
    for outcome in &report.outcomes {
        match outcome {
            JobOutcome::TimedOut(t) => assert!(t.fallback_attempted),
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }
}

#[test]
fn generous_deadline_leaves_the_report_bit_identical() {
    // A deadline nothing overruns must not perturb one byte of the
    // deterministic report relative to an unbounded run: the cooperative
    // checks are observation-only until they trip.
    let jobs = two_circuit_corpus();
    let lib = CellLibrary::synthetic_180nm();
    let unbounded = reference_campaign().run(&jobs, &lib);
    let bounded = reference_campaign()
        .with_job_deadline(Duration::from_secs(3600))
        .run(&jobs, &lib);
    assert_eq!(
        render_report(&unbounded, "T(99%)", false),
        render_report(&bounded, "T(99%)", false)
    );
}

#[test]
fn resumed_campaign_reproduces_the_uninterrupted_report_byte_for_byte() {
    let jobs = vec![
        CampaignJob::new("c17", bench::c17()),
        CampaignJob::new(
            "gen200",
            generate_scaled(&ScaledProfile::with_nodes(200), 1),
        ),
        CampaignJob::new(
            "gen400",
            generate_scaled(&ScaledProfile::with_nodes(400), 1),
        ),
    ];
    let lib = CellLibrary::synthetic_180nm();
    let campaign = reference_campaign();
    let uninterrupted = render_report(&campaign.run(&jobs, &lib), "T(99%)", false);

    // "Interrupt" the campaign by journaling only the first two jobs,
    // exactly as a killed process would leave the file.
    let dir = scratch_dir("resume");
    let path = dir.join("campaign.journal");
    let mut journal = Journal::create(&path).expect("create journal");
    campaign.run_resumable(&jobs[..2], &lib, Some(&mut journal));
    drop(journal);

    // Resume over the full corpus: the two journaled jobs are restored
    // (not re-run), the third runs fresh, and the report is bit-equal.
    let mut journal = Journal::resume(&path).expect("resume journal");
    assert_eq!(journal.len(), 2);
    assert!(journal.corrupt_entries().is_empty());
    let resumed = campaign.run_resumable(&jobs, &lib, Some(&mut journal));
    assert_eq!(resumed.resumed, 2);
    assert_eq!(render_report(&resumed, "T(99%)", false), uninterrupted);
    drop(journal);

    // A corrupt entry line (torn write) is quarantined, its job re-runs,
    // and the final report is still byte-identical.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 4, "header plus three entries");
    lines[2] = lines[2][..lines[2].len() / 2].to_string();
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    let mut journal = Journal::resume(&path).expect("corrupt entries are not fatal");
    assert_eq!(journal.len(), 2, "the torn entry is dropped");
    assert_eq!(journal.corrupt_entries().len(), 1);
    let repaired = campaign.run_resumable(&jobs, &lib, Some(&mut journal));
    assert_eq!(repaired.resumed, 2);
    assert_eq!(render_report(&repaired, "T(99%)", false), uninterrupted);
    drop(journal);

    // A missing or mangled header is a hard error: the file is not a
    // journal, and silently starting over would discard the operator's
    // checkpoint expectations.
    std::fs::write(&path, "not a journal\n").unwrap();
    assert!(Journal::resume(&path).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn journal_entries_from_a_different_config_are_not_resumed() {
    // Same corpus, different campaign knobs: the config fingerprint in
    // the job key must keep stale outcomes from leaking into the run.
    let jobs = two_circuit_corpus();
    let lib = CellLibrary::synthetic_180nm();
    let dir = scratch_dir("fingerprint");
    let path = dir.join("campaign.journal");

    let mut journal = Journal::create(&path).expect("create journal");
    reference_campaign().run_resumable(&jobs, &lib, Some(&mut journal));
    drop(journal);

    let mut journal = Journal::resume(&path).expect("resume journal");
    assert_eq!(journal.len(), 2);
    let other =
        reference_campaign()
            .with_max_iterations(1)
            .run_resumable(&jobs, &lib, Some(&mut journal));
    assert_eq!(other.resumed, 0, "different config must not resume");
    assert_eq!(other.counts().completed, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

//! The paper's central correctness claim: the pruned algorithm's results
//! are *identical* to brute force ("Our optimization results are identical
//! with those of the brute force approach", Section 4).
//!
//! These tests drive both selectors through multi-iteration optimizations
//! on a variety of circuits — reconvergent, symmetric (tie-rich), and
//! randomly generated — asserting bit-identical selections and
//! sensitivities at every step.

use statsize::{
    BruteForceSelector, HeuristicSelector, Objective, Optimizer, PrunedSelector, SelectorKind,
    TimedCircuit,
};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::generator::{self, Profile};
use statsize_netlist::{bench, shapes, Netlist};

fn assert_identical_trajectories(nl: &Netlist, dt: f64, steps: usize, objective: Objective) {
    let lib = CellLibrary::synthetic_180nm();
    let mut circuit = TimedCircuit::new(nl, &lib, VariationModel::paper_default(), dt);
    let brute = BruteForceSelector::new(1.0);
    let pruned = PrunedSelector::new(1.0);
    for step in 0..steps {
        let b = brute.select(&circuit, objective);
        let (p, stats) = pruned.select_with_stats(&circuit, objective);
        assert_eq!(
            b,
            p,
            "{}: selector divergence at step {step} (stats: {stats:?})",
            nl.name()
        );
        match b {
            Some(sel) => circuit.commit_resize(sel.gate, 1.0),
            None => break,
        }
    }
}

#[test]
fn identical_on_c17() {
    assert_identical_trajectories(&bench::c17(), 1.0, 8, Objective::percentile(0.99));
}

#[test]
fn identical_on_reconvergent_grid() {
    assert_identical_trajectories(
        &shapes::grid("g", 4, 4),
        1.0,
        5,
        Objective::percentile(0.99),
    );
}

#[test]
fn identical_on_tie_rich_symmetric_circuits() {
    // Perfect symmetry produces exact sensitivity ties; the deterministic
    // tie-break must keep the selectors aligned.
    assert_identical_trajectories(
        &shapes::diamond("d", 4),
        1.0,
        6,
        Objective::percentile(0.99),
    );
    assert_identical_trajectories(
        &shapes::path_bundle("b", &[5, 5, 5, 5]),
        1.0,
        6,
        Objective::percentile(0.99),
    );
}

#[test]
fn identical_under_the_mean_objective() {
    assert_identical_trajectories(&bench::c17(), 1.0, 5, Objective::Mean);
}

#[test]
fn identical_at_other_percentiles() {
    assert_identical_trajectories(
        &shapes::grid("g", 3, 3),
        1.0,
        4,
        Objective::percentile(0.90),
    );
    assert_identical_trajectories(
        &shapes::grid("g", 3, 3),
        1.0,
        4,
        Objective::percentile(0.50),
    );
}

#[test]
fn identical_on_random_circuits_across_seeds() {
    let profile = Profile {
        name: "rnd",
        inputs: 6,
        outputs: 5,
        nodes: 64,
        edges: 130,
        depth: 8,
    };
    for seed in 0..8u64 {
        let nl = generator::generate(&profile, seed);
        assert_identical_trajectories(&nl, 1.0, 3, Objective::percentile(0.99));
    }
}

#[test]
fn identical_on_a_benchmark_profile() {
    let nl = generator::generate_iscas("c432", 11).expect("known profile");
    assert_identical_trajectories(&nl, 2.0, 3, Objective::percentile(0.99));
}

#[test]
fn unbounded_lookahead_heuristic_equals_brute_force() {
    let nl = shapes::grid("g", 3, 4);
    let lib = CellLibrary::synthetic_180nm();
    let circuit = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 1.0);
    let obj = Objective::percentile(0.99);
    let h = HeuristicSelector::new(1.0, usize::MAX).select(&circuit, obj);
    let b = BruteForceSelector::new(1.0).select(&circuit, obj);
    assert_eq!(h, b);
}

#[test]
fn top_k_selection_matches_brute_force() {
    // The multi-gate variant (paper Section 3.3) must stay exact: the
    // pruned top-k equals the brute-force top-k, including order.
    let lib = CellLibrary::synthetic_180nm();
    for (nl, dt) in [
        (bench::c17(), 1.0),
        (shapes::grid("g", 4, 4), 1.0),
        (
            generator::generate_iscas("c432", 9).expect("known profile"),
            2.0,
        ),
    ] {
        let circuit = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), dt);
        let obj = Objective::percentile(0.99);
        for k in [1usize, 3, 8] {
            let b = BruteForceSelector::new(1.0).select_top_k(&circuit, obj, k);
            let p = PrunedSelector::new(1.0).select_top_k(&circuit, obj, k);
            assert_eq!(b, p, "{}: top-{k} mismatch", nl.name());
            assert!(b.len() <= k);
            // Sorted by descending sensitivity.
            for w in b.windows(2) {
                assert!(w[0].sensitivity >= w[1].sensitivity);
            }
        }
    }
}

#[test]
fn multi_move_optimizer_still_improves() {
    let nl = generator::generate_iscas("c432", 3).expect("known profile");
    let lib = CellLibrary::synthetic_180nm();
    let obj = Objective::percentile(0.99);

    let mut batched = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 2.0);
    let rb = Optimizer::new(obj, SelectorKind::Pruned)
        .with_moves_per_iteration(4)
        .with_max_iterations(12)
        .run(&mut batched);
    assert_eq!(rb.iterations_run(), 12);
    assert!(rb.final_objective < rb.initial_objective);

    // Batched moves amortize selection: the total selection work (recorded
    // on the first move of each batch) must be under that of 12 singles.
    let mut single = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 2.0);
    let rs = Optimizer::new(obj, SelectorKind::Pruned)
        .with_max_iterations(12)
        .run(&mut single);
    let batched_selections = rb.iterations.iter().filter(|r| r.prune.is_some()).count();
    let single_selections = rs.iterations.iter().filter(|r| r.prune.is_some()).count();
    assert!(batched_selections < single_selections);
}

#[test]
fn full_optimizer_runs_agree_end_to_end() {
    let nl = generator::generate_iscas("c432", 5).expect("known profile");
    let lib = CellLibrary::synthetic_180nm();
    let obj = Objective::percentile(0.99);

    let mut a = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 2.0);
    let ra = Optimizer::new(obj, SelectorKind::Pruned)
        .with_max_iterations(5)
        .run(&mut a);

    let mut b = TimedCircuit::new(&nl, &lib, VariationModel::paper_default(), 2.0);
    let rb = Optimizer::new(obj, SelectorKind::BruteForce)
        .with_max_iterations(5)
        .run(&mut b);

    assert_eq!(ra.final_objective, rb.final_objective);
    assert_eq!(ra.iterations_run(), rb.iterations_run());
    let gates_a: Vec<_> = ra.iterations.iter().map(|r| r.gate).collect();
    let gates_b: Vec<_> = rb.iterations.iter().map(|r| r.gate).collect();
    assert_eq!(gates_a, gates_b, "gate sequences must match");
    assert_eq!(a.sizes(), b.sizes(), "final sizing solutions must match");
}

//! Cross-crate guarantees of the tiered convolution engine.
//!
//! The contract under test: percentile/moment consumers (arrival
//! propagation in [`TimedCircuit`]) may route wide convolutions through
//! the certified FFT tier, but the whole-bin shift-bound machinery the
//! pruning theory rests on (Theorems 1–3) **never** does — the pruned
//! selector strips the FFT tier from any policy it is handed, by
//! construction. The proof is observational: `statsize_dist` counts
//! every FFT convolution in a process-global counter, so snapshotting it
//! around a pruned selection under a force-FFT policy shows exactly
//! which call sites routed where.
//!
//! Everything runs in ONE test function: the counter is global, and
//! concurrent test threads doing their own FFT work would make
//! per-phase deltas meaningless.

use statsize::{BruteForceSelector, Objective, PrunedSelector, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_dist::{fft_convolutions, TierPolicy, KERNEL_TIER_ENV};
use statsize_netlist::bench;

/// Whether the environment pins a dense tier, overriding even an
/// explicit [`TierPolicy::force_fft`] (the operator's kill switch wins
/// over programmatic forcing). Under the CI matrix's scalar/simd legs
/// the FFT-engagement assertions below are vacuous and must be skipped.
fn env_pins_dense() -> bool {
    matches!(
        std::env::var(KERNEL_TIER_ENV).as_deref(),
        Ok("scalar") | Ok("sse2") | Ok("simd") | Ok("avx2") | Ok("neon")
    )
}

#[test]
fn fft_tier_reaches_propagation_but_never_the_pruned_sweep() {
    let nl = bench::c17();
    let lib = CellLibrary::synthetic_180nm();
    let obj = Objective::percentile(0.99);

    // Force-FFT circuit: every arrival convolution of at least 2 result
    // bins is eligible, so construction alone must exercise the FFT
    // path (unless the environment pins a dense tier).
    let policy = TierPolicy::force_fft();
    let before_build = fft_convolutions();
    let circuit =
        TimedCircuit::with_kernel_policy(&nl, &lib, VariationModel::paper_default(), 1.0, policy);
    let during_build = fft_convolutions() - before_build;
    if env_pins_dense() {
        assert!(
            !policy.uses_fft_for(4096, 4096),
            "dense env must veto forcing"
        );
        assert_eq!(during_build, 0, "dense env must keep propagation dense");
    } else {
        assert!(
            during_build > 0,
            "forced-FFT arrival propagation must route through the FFT tier"
        );
    }

    // The pruned selector is handed the same force-FFT policy — and must
    // strip it: its sweep is a shift-bound call site, exact-tier-only by
    // the paper's Theorems 1–3. Not one FFT convolution may happen.
    let before_sweep = fft_convolutions();
    let pruned = PrunedSelector::new(1.0)
        .with_kernel_policy(policy)
        .select(&circuit, obj);
    assert_eq!(
        fft_convolutions() - before_sweep,
        0,
        "the pruned sweep must never route through the FFT tier"
    );

    // And stripping the tier costs nothing: on the same (possibly
    // FFT-propagated) base arrivals, the pruned selection still matches
    // exact brute force bit for bit.
    let brute = BruteForceSelector::new(1.0).select(&circuit, obj);
    let (p, b) = (pruned.expect("c17 improves"), brute.expect("c17 improves"));
    assert_eq!(p.gate, b.gate);
    assert_eq!(p.sensitivity, b.sensitivity);

    // An exact-policy circuit never touches the FFT tier at all, under
    // any environment setting: `TierPolicy::exact` is env-immune.
    let before_exact = fft_convolutions();
    let exact_circuit = TimedCircuit::with_kernel_policy(
        &nl,
        &lib,
        VariationModel::paper_default(),
        1.0,
        TierPolicy::exact(),
    );
    let _ = PrunedSelector::new(1.0).select(&exact_circuit, obj);
    assert_eq!(
        fft_convolutions() - before_exact,
        0,
        "exact-tier circuits and sweeps must stay off the FFT path"
    );
}

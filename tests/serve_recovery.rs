//! Crash-recovery byte-identity for the serve-mode WAL: kill the server
//! at **every** request boundary, restart from the write-ahead log, and
//! the concatenated responses (pre-crash + post-recovery) must be
//! byte-for-byte what an uninterrupted run produces — the acceptance
//! bar for durable serve mode. The session core's fork ≡ fresh-replay
//! invariant is what makes WAL replay a proof rather than a best
//! effort; these tests pin it end to end through the JSONL front-end.

use statsize::wal::{self, Wal};
use statsize_bench::serve::Server;
use std::path::PathBuf;

/// A transcript touching every durable record kind: load, open, commit,
/// snapshot, fork, step (committed moves), rollback (discards commits),
/// close — plus speculative/read-only ops that must leave no WAL trace.
/// No `stats` lines: admission counters are serving-process state, not
/// session state, and are deliberately not durable.
fn script() -> Vec<&'static str> {
    vec![
        r#"{"id":1,"op":"load","design":"c17"}"#,
        r#"{"id":2,"op":"open","session":"main","design":"c17","iters":6}"#,
        r#"{"id":3,"op":"commit","session":"main","gate":"22","delta_w":1}"#,
        r#"{"id":4,"op":"snapshot","session":"main","name":"base"}"#,
        r#"{"id":5,"op":"fork","session":"alt","from":"main"}"#,
        r#"{"id":6,"op":"step","session":"alt"}"#,
        r#"{"id":7,"op":"batch","requests":[{"op":"what_if","session":"main","gate":"16","delta_w":2},{"op":"commit","session":"alt","gate":"19","delta_w":1},{"op":"query","session":"main"}]}"#,
        r#"{"id":8,"op":"rollback","session":"main","name":"base"}"#,
        r#"{"id":9,"op":"step","session":"main"}"#,
        r#"{"id":10,"op":"query","session":"alt"}"#,
        r#"{"id":11,"op":"close","session":"alt"}"#,
        r#"{"id":12,"op":"query","session":"main"}"#,
    ]
}

fn drive(server: &mut Server, lines: &[&str]) -> Vec<String> {
    lines
        .iter()
        .filter_map(|line| server.handle_line(line))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("statsize-serve-recovery-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn crash_at_every_line_boundary_recovers_byte_identically() {
    let lines = script();
    for budget in [0usize, 4] {
        let reference = drive(&mut Server::new().with_total_threads(budget), &lines);
        assert!(
            reference.iter().all(|r| r.contains("\"ok\":true")),
            "{reference:?}"
        );
        let dir = temp_dir(&format!("split-{budget}"));
        let path = dir.join("wal.jsonl");
        for split in 0..=lines.len() {
            let mut before = Server::new()
                .with_total_threads(budget)
                .with_wal(Wal::create(&path).unwrap());
            let mut responses = drive(&mut before, &lines[..split]);
            drop(before); // crash: the WAL is never sealed

            let contents = wal::read(&path).unwrap();
            assert!(
                contents.quarantined.is_empty(),
                "whole-line appends never tear: {:?}",
                contents.quarantined
            );
            assert!(!contents.sealed, "a crash leaves no seal");
            let mut after = Server::new().with_total_threads(budget);
            after.restore(&contents).unwrap();
            responses.extend(drive(&mut after, &lines[split..]));
            assert_eq!(
                responses, reference,
                "split at {split} under budget {budget} diverged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn double_crash_recovers_through_the_recovered_wal() {
    let lines = script();
    let reference = drive(&mut Server::new(), &lines);
    let dir = temp_dir("double");
    let first = dir.join("wal-1.jsonl");
    let second = dir.join("wal-2.jsonl");

    let mut a = Server::new().with_wal(Wal::create(&first).unwrap());
    let mut responses = drive(&mut a, &lines[..5]);
    drop(a); // first crash

    // The recovering server re-checkpoints the restored history into
    // its own WAL, so a second crash loses nothing either.
    let contents = wal::read(&first).unwrap();
    let mut b = Server::new().with_wal(Wal::create(&second).unwrap());
    b.restore(&contents).unwrap();
    responses.extend(drive(&mut b, &lines[5..9]));
    drop(b); // second crash

    let contents = wal::read(&second).unwrap();
    let mut c = Server::new();
    c.restore(&contents).unwrap();
    responses.extend(drive(&mut c, &lines[9..]));
    assert_eq!(responses, reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_shutdown_seals_and_recovers_identically() {
    let lines = script();
    let reference = drive(&mut Server::new(), &lines);
    let dir = temp_dir("sealed");
    let path = dir.join("wal.jsonl");

    let mut server = Server::new().with_wal(Wal::create(&path).unwrap());
    let head = drive(&mut server, &lines[..8]);
    server.finish(); // clean stop
    drop(server);

    let contents = wal::read(&path).unwrap();
    assert!(contents.sealed, "finish() must seal the WAL");
    let mut recovered = Server::new();
    recovered.restore(&contents).unwrap();
    let mut responses = head;
    responses.extend(drive(&mut recovered, &lines[8..]));
    assert_eq!(responses, reference);
    std::fs::remove_dir_all(&dir).ok();
}

//! Cross-cutting invariants of the optimization loop: monotone
//! trajectories, exact width accounting, determinism, and agreement
//! between the incremental and from-scratch timing paths after long runs.

use statsize::{Objective, Optimizer, SelectorKind, TimedCircuit};
use statsize_cells::{CellLibrary, VariationModel};
use statsize_netlist::{generator, shapes};

fn lib() -> CellLibrary {
    CellLibrary::synthetic_180nm()
}

#[test]
fn objective_is_monotone_non_increasing_for_exact_selectors() {
    // Exact selectors commit only moves with positive measured
    // sensitivity, so the trajectory is monotone. (The heuristic selector
    // commits on an *optimistic bound* and may regress on an iteration —
    // the price of skipping full propagation.)
    let nl = shapes::grid("g", 3, 4);
    let library = lib();
    for kind in [SelectorKind::Pruned, SelectorKind::BruteForce] {
        let mut c = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 1.0);
        let result = Optimizer::new(Objective::percentile(0.99), kind)
            .with_max_iterations(8)
            .run(&mut c);
        let mut prev = result.initial_objective;
        for r in &result.iterations {
            assert!(
                r.objective_after <= prev + 1e-9,
                "{kind:?}: objective increased at iteration {}",
                r.iteration
            );
            prev = r.objective_after;
        }
    }
}

#[test]
fn width_accounting_is_exact() {
    let nl = shapes::grid("g", 3, 3);
    let library = lib();
    let mut c = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 1.0);
    let dw = 0.75;
    let result = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_delta_w(dw)
        .with_max_iterations(6)
        .run(&mut c);
    let expected = result.initial_width + dw * result.iterations_run() as f64;
    assert!((result.final_width - expected).abs() < 1e-9);
    assert!((c.total_width() - expected).abs() < 1e-9);
    for (i, r) in result.iterations.iter().enumerate() {
        let w = result.initial_width + dw * (i + 1) as f64;
        assert!((r.total_width_after - w).abs() < 1e-9, "iteration {i}");
    }
}

#[test]
fn runs_are_deterministic() {
    let nl = generator::generate_iscas("c432", 7).expect("known profile");
    let library = lib();
    let run = || {
        let mut c = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 2.0);
        let r = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
            .with_max_iterations(4)
            .run(&mut c);
        (
            r.final_objective,
            r.iterations.iter().map(|it| it.gate).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "same inputs must give bit-identical runs");
}

#[test]
fn incremental_timing_stays_exact_over_a_long_run() {
    // After dozens of commits through the incremental SSTA path, the
    // state must still equal a from-scratch recomputation bit for bit.
    let nl = shapes::grid("g", 4, 4);
    let library = lib();
    let mut c = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 1.0);
    let _ = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_max_iterations(25)
        .run(&mut c);
    let incremental = c.ssta().clone();
    c.recompute_from_scratch();
    assert_eq!(&incremental, c.ssta());
}

#[test]
fn sensitivity_predicts_the_committed_improvement() {
    // For the percentile objective the selection's sensitivity is the
    // exact improvement of the committed move (Δw = 1), since commit and
    // trial use the same propagation.
    let nl = shapes::grid("g", 3, 3);
    let library = lib();
    let mut c = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 1.0);
    let result = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_max_iterations(6)
        .run(&mut c);
    let mut prev = result.initial_objective;
    for r in &result.iterations {
        let measured = prev - r.objective_after;
        assert!(
            (measured - r.sensitivity).abs() < 1e-6,
            "iteration {}: predicted {} vs measured {}",
            r.iteration,
            r.sensitivity,
            measured
        );
        prev = r.objective_after;
    }
}

#[test]
fn prune_stats_are_recorded_and_consistent() {
    let nl = generator::generate_iscas("c432", 2).expect("known profile");
    let library = lib();
    let mut c = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 2.0);
    let result = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_max_iterations(3)
        .run(&mut c);
    for r in &result.iterations {
        let stats = r.prune.expect("pruned selector records stats");
        assert_eq!(stats.candidates, nl.gate_count());
        assert!(stats.completed + stats.pruned <= stats.candidates);
        assert!(stats.completed >= 1, "the winner always completes");
        assert!(stats.nodes_computed > 0);
        assert!(stats.pruned_fraction() <= 1.0);
    }
}

#[test]
fn stop_reasons_are_accurate() {
    let nl = shapes::chain("c", 3);
    let library = lib();

    let mut c1 = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 1.0);
    let r1 = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_max_iterations(2)
        .run(&mut c1);
    assert_eq!(r1.stop, statsize::StopReason::MaxIterations);

    let mut c2 = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 1.0);
    let r2 = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_width_limit(4.0)
        .run(&mut c2);
    assert_eq!(r2.stop, statsize::StopReason::WidthLimit);
    assert_eq!(r2.iterations_run(), 1);

    let mut c3 = TimedCircuit::new(&nl, &library, VariationModel::paper_default(), 1.0);
    let r3 = Optimizer::new(Objective::percentile(0.99), SelectorKind::Pruned)
        .with_min_sensitivity(1e6) // absurd threshold: converge immediately
        .run(&mut c3);
    assert_eq!(r3.stop, statsize::StopReason::Converged);
    assert_eq!(r3.iterations_run(), 0);
}

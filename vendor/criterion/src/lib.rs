//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored stub
//! implements the subset of the criterion API the workspace's benches
//! use — groups, `bench_with_input`, `bench_function`, `iter`,
//! `iter_batched`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple but honest measurement loop: each benchmark is
//! warmed up, then timed over enough iterations to fill a fixed
//! measurement window, and the mean/min per-iteration times are printed.
//!
//! It is intentionally *not* statistically rigorous (no outlier analysis,
//! no confidence intervals); it exists so `cargo bench` compiles, runs,
//! and produces stable-enough numbers for coarse regression tracking.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque blinding for benchmark inputs/outputs (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched iterations size their batches (only used as a hint here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (batches of 1).
    LargeInput,
    /// One routine call per setup call.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter (e.g. a size).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One measured sample: total wall time over a number of iterations.
#[derive(Debug, Clone, Copy)]
struct Sample {
    total: Duration,
    iters: u64,
}

/// The per-benchmark measurement driver passed to closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Sample>,
}

/// Target wall-clock time spent measuring one benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Target wall-clock time spent warming up one benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(60);

impl Bencher {
    /// Measures a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Split the measurement window into ~20 samples.
        let iters_per_sample =
            ((MEASURE_WINDOW.as_secs_f64() / 20.0 / per_iter.max(1e-9)) as u64).max(1);
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_WINDOW {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(Sample {
                total: t0.elapsed(),
                iters: iters_per_sample,
            });
        }
    }

    /// Measures a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let measure_start = Instant::now();
        // Warm up once to page everything in.
        std_black_box(routine(setup()));
        while measure_start.elapsed() < MEASURE_WINDOW {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.samples.push(Sample {
                total: t0.elapsed(),
                iters: 1,
            });
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.total.as_secs_f64() / s.iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{label:<40} min {:>12}  median {:>12}  mean {:>12}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub
    /// sizes samples by wall-clock window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a routine parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks an unparameterized routine within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finishes the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a single named routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }
}

/// Groups benchmark functions, mirroring criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // minimal runner has no options and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("conv", 8).to_string(), "conv/8");
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with("s"));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored stub
//! provides exactly the API surface the workspace uses — `StdRng`
//! (seedable, deterministic), the [`Rng`] extension methods
//! (`gen_range`, `gen_bool`, `gen`), and `seq::SliceRandom::choose` —
//! with the same module layout as `rand 0.8`, so swapping the real crate
//! back in is a one-line manifest change.
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64. It does **not**
//! reproduce the real `rand::rngs::StdRng` stream; all in-repo consumers
//! only rely on determinism for a fixed seed, never on a particular
//! stream.

#![deny(unsafe_code)]

/// A source of random 64-bit words. Implemented by [`rngs::StdRng`].
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value in the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        gen_unit_f64(self) < p
    }

    /// A sample from the uniform distribution on `[0, 1)` (for `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn gen_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types generatable "from the standard distribution" (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        gen_unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a uniform value can be drawn from (`rng.gen_range(..)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    // Zone-based rejection keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Offset in the unsigned domain: two's-complement wrapping
                // stays correct even for ranges wider than the signed max.
                (self.start as u64).wrapping_add(uniform_below(rng, span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(uniform_below(rng, span)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + gen_unit_f64(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**,
    /// seed-expanded with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Mirror of `rand::seq::SliceRandom` (the `choose` subset).
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let x = rng.gen_range(i64::MIN..i64::MAX);
            assert!(x < i64::MAX);
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored stub
//! provides the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`, implemented
//!   for numeric ranges, tuples, and [`Just`];
//! * [`collection::vec`] with fixed or ranged lengths and [`any`] for
//!   `bool`;
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`), and
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differences vs real proptest: cases are drawn from a
//! deterministic fixed-seed RNG (no persisted failure file) and there is
//! **no shrinking** — a failing case reports the generated inputs as-is.

#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property within a [`proptest!`] body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic RNG driving generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A fresh deterministic generator (fixed seed, optionally overridden
    /// via `PROPTEST_SEED` for exploratory reruns).
    pub fn deterministic() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_u64);
        Self(StdRng::seed_from_u64(seed))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values to a *strategy* and draws from it — for
    /// dependent generation.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "arbitrary value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u64>()
    }
}

/// The canonical strategy for a type — see [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T` (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests over strategies; see the crate docs for the
/// supported subset of real proptest's syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                // Generate every argument up front and keep a rendering of
                // the inputs for the failure report (no shrinking).
                let __inputs = ( $($crate::Strategy::generate(&($strat), &mut rng),)+ );
                let __rendered = format!("{:#?}", __inputs);
                let ($($pat,)+) = __inputs;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1, config.cases, e, __rendered
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the enclosing proptest case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing proptest case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn sum_strategy() -> impl Strategy<Value = (Vec<u64>, u64)> {
        (crate::collection::vec(0u64..100, 1..8), 1u64..5)
            .prop_flat_map(|(v, k)| (Just(v), Just(k)))
            .prop_map(|(v, k)| (v, k))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose((v, k) in sum_strategy(), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!((1..5).contains(&k));
            prop_assert_eq!(flag, flag);
        }

        // Attributes pass through the macro, so failure reporting is
        // testable with `should_panic`.
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failing_property_reports_inputs(x in 0usize..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
